//! The model store: serialized models in the DFS plus the `R_Models`
//! metadata table (Figure 10).
//!
//! "While models are stored in the DFS, meta-data related to the models are
//! stored in a database table called R_Models. … Models can be assigned
//! security permissions to grant access or modification rights to database
//! users." (Section 5)

use crate::dfs::Dfs;
use crate::error::{DbError, Result};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use vdr_cluster::{NodeId, PhaseRecorder};
use vdr_columnar::{Batch, Column, DataType, Schema};

/// One row of `R_Models`.
#[derive(Debug, Clone)]
pub struct ModelMeta {
    pub name: String,
    pub owner: String,
    /// Model family, e.g. "kmeans", "regression", "randomforest".
    pub model_type: String,
    /// Serialized size, bytes.
    pub size: u64,
    pub description: String,
    /// Users granted access (the owner always has access).
    pub grants: BTreeSet<String>,
}

/// Model blobs in the DFS + metadata + permissions.
pub struct ModelStore {
    dfs: Arc<Dfs>,
    meta: RwLock<BTreeMap<String, ModelMeta>>,
}

impl ModelStore {
    pub fn new(dfs: Arc<Dfs>) -> Self {
        ModelStore {
            dfs,
            meta: RwLock::new(BTreeMap::new()),
        }
    }

    fn blob_name(model: &str) -> String {
        format!("models/{model}")
    }

    /// Deploy (save) a model: write the blob to the DFS and the metadata row
    /// to `R_Models`. Overwrites an existing model only if `owner` owns it.
    #[allow(clippy::too_many_arguments)]
    pub fn save(
        &self,
        src: NodeId,
        name: &str,
        owner: &str,
        model_type: &str,
        description: &str,
        blob: bytes::Bytes,
        rec: &PhaseRecorder,
    ) -> Result<()> {
        {
            let meta = self.meta.read();
            if let Some(existing) = meta.get(name) {
                if existing.owner != owner {
                    return Err(DbError::Model(format!(
                        "model '{name}' is owned by '{}'",
                        existing.owner
                    )));
                }
            }
        }
        let size = blob.len() as u64;
        self.dfs.write(src, &Self::blob_name(name), blob, rec)?;
        self.meta.write().insert(
            name.to_string(),
            ModelMeta {
                name: name.to_string(),
                owner: owner.to_string(),
                model_type: model_type.to_string(),
                size,
                description: description.to_string(),
                grants: BTreeSet::new(),
            },
        );
        Ok(())
    }

    /// Fetch a model blob as seen from `reader_node` (prediction UDx
    /// instances call this on every node), enforcing permissions.
    pub fn load(
        &self,
        reader_node: NodeId,
        name: &str,
        user: &str,
        rec: &PhaseRecorder,
    ) -> Result<bytes::Bytes> {
        self.check_access(name, user)?;
        self.dfs.read(reader_node, &Self::blob_name(name), rec)
    }

    /// Grant `user` read access to `name` (owner-only operation).
    pub fn grant(&self, name: &str, owner: &str, user: &str) -> Result<()> {
        let mut meta = self.meta.write();
        let m = meta
            .get_mut(name)
            .ok_or_else(|| DbError::Model(format!("model '{name}' does not exist")))?;
        if m.owner != owner {
            return Err(DbError::Model(format!(
                "only owner '{}' may grant access to '{name}'",
                m.owner
            )));
        }
        m.grants.insert(user.to_string());
        Ok(())
    }

    fn check_access(&self, name: &str, user: &str) -> Result<()> {
        let meta = self.meta.read();
        let m = meta
            .get(name)
            .ok_or_else(|| DbError::Model(format!("model '{name}' does not exist")))?;
        if m.owner == user || m.grants.contains(user) || user == "dbadmin" {
            Ok(())
        } else {
            Err(DbError::Model(format!(
                "user '{user}' lacks access to model '{name}'"
            )))
        }
    }

    pub fn drop_model(&self, name: &str, user: &str) -> Result<()> {
        {
            let meta = self.meta.read();
            let m = meta
                .get(name)
                .ok_or_else(|| DbError::Model(format!("model '{name}' does not exist")))?;
            if m.owner != user && user != "dbadmin" {
                return Err(DbError::Model(format!(
                    "user '{user}' may not drop model '{name}'"
                )));
            }
        }
        self.dfs.delete(&Self::blob_name(name))?;
        self.meta.write().remove(name);
        Ok(())
    }

    pub fn get_meta(&self, name: &str) -> Option<ModelMeta> {
        self.meta.read().get(name).cloned()
    }

    pub fn exists(&self, name: &str) -> bool {
        self.meta.read().contains_key(name)
    }

    /// The `R_Models` table contents (Figure 10): model | owner | type |
    /// size | description.
    pub fn as_batch(&self) -> Batch {
        let meta = self.meta.read();
        let schema = Schema::of(&[
            ("model", DataType::Varchar),
            ("owner", DataType::Varchar),
            ("type", DataType::Varchar),
            ("size", DataType::Int64),
            ("description", DataType::Varchar),
        ]);
        let mut names = Vec::new();
        let mut owners = Vec::new();
        let mut types = Vec::new();
        let mut sizes = Vec::new();
        let mut descs = Vec::new();
        for m in meta.values() {
            names.push(m.name.clone());
            owners.push(m.owner.clone());
            types.push(m.model_type.clone());
            sizes.push(m.size as i64);
            descs.push(m.description.clone());
        }
        Batch::new(
            schema,
            vec![
                Column::from_strings(names),
                Column::from_strings(owners),
                Column::from_strings(types),
                Column::from_i64(sizes),
                Column::from_strings(descs),
            ],
        )
        .expect("columns constructed with equal lengths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use vdr_cluster::{PhaseKind, SimCluster};

    fn setup() -> (ModelStore, PhaseRecorder) {
        let cluster = SimCluster::for_tests(3);
        let dfs = Arc::new(Dfs::new(cluster, 2));
        (
            ModelStore::new(dfs),
            PhaseRecorder::new("t", PhaseKind::Sequential, 3),
        )
    }

    #[test]
    fn save_load_roundtrip_with_metadata() {
        let (store, rec) = setup();
        store
            .save(
                NodeId(0),
                "model1",
                "X",
                "kmeans",
                "clustering",
                Bytes::from_static(b"centers"),
                &rec,
            )
            .unwrap();
        let blob = store.load(NodeId(2), "model1", "X", &rec).unwrap();
        assert_eq!(blob, Bytes::from_static(b"centers"));
        let m = store.get_meta("model1").unwrap();
        assert_eq!(m.owner, "X");
        assert_eq!(m.model_type, "kmeans");
        assert_eq!(m.size, 7);
    }

    #[test]
    fn permissions_enforced() {
        let (store, rec) = setup();
        store
            .save(
                NodeId(0),
                "m",
                "alice",
                "regression",
                "",
                Bytes::from_static(b"c"),
                &rec,
            )
            .unwrap();
        // Bob can't read, drop, or grant.
        assert!(store.load(NodeId(0), "m", "bob", &rec).is_err());
        assert!(store.drop_model("m", "bob").is_err());
        assert!(store.grant("m", "bob", "bob").is_err());
        // Until alice grants.
        store.grant("m", "alice", "bob").unwrap();
        assert!(store.load(NodeId(0), "m", "bob", &rec).is_ok());
        // dbadmin bypasses.
        assert!(store.load(NodeId(0), "m", "dbadmin", &rec).is_ok());
        // Ownership protects overwrite.
        assert!(store
            .save(
                NodeId(0),
                "m",
                "bob",
                "kmeans",
                "",
                Bytes::from_static(b"x"),
                &rec
            )
            .is_err());
    }

    #[test]
    fn r_models_table_matches_figure_10() {
        let (store, rec) = setup();
        store
            .save(
                NodeId(0),
                "model1",
                "X",
                "kmeans",
                "clustering",
                Bytes::from(vec![0; 100]),
                &rec,
            )
            .unwrap();
        store
            .save(
                NodeId(0),
                "model2",
                "Y",
                "regression",
                "forecasting",
                Bytes::from(vec![0; 20]),
                &rec,
            )
            .unwrap();
        let batch = store.as_batch();
        assert_eq!(
            batch.schema().names(),
            vec!["model", "owner", "type", "size", "description"]
        );
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(
            batch.row(0)[0],
            vdr_columnar::Value::Varchar("model1".into())
        );
        assert_eq!(batch.row(0)[3], vdr_columnar::Value::Int64(100));
        assert_eq!(
            batch.row(1)[2],
            vdr_columnar::Value::Varchar("regression".into())
        );
    }

    #[test]
    fn drop_model_removes_blob_and_meta() {
        let (store, rec) = setup();
        store
            .save(
                NodeId(0),
                "m",
                "u",
                "kmeans",
                "",
                Bytes::from_static(b"b"),
                &rec,
            )
            .unwrap();
        store.drop_model("m", "u").unwrap();
        assert!(!store.exists("m"));
        assert!(store.load(NodeId(0), "m", "u", &rec).is_err());
        assert!(store.drop_model("m", "u").is_err());
    }

    #[test]
    fn owner_can_overwrite_own_model() {
        let (store, rec) = setup();
        store
            .save(
                NodeId(0),
                "m",
                "u",
                "kmeans",
                "v1",
                Bytes::from_static(b"1"),
                &rec,
            )
            .unwrap();
        store
            .save(
                NodeId(0),
                "m",
                "u",
                "kmeans",
                "v2",
                Bytes::from_static(b"22"),
                &rec,
            )
            .unwrap();
        assert_eq!(store.get_meta("m").unwrap().size, 2);
        assert_eq!(store.get_meta("m").unwrap().description, "v2");
    }
}
