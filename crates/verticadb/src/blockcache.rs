//! Node-local cache of scanned segment containers, in two tiers.
//!
//! A real Vertica node keeps hot ROS containers in the OS page cache, but
//! our engine was still paying the *decode* on every re-read. This cache
//! keeps the scan product per `(node, container path)`, mirroring the
//! prediction path's `ModelCache`: entries carry the container's crc32 as a
//! content version tag, so a same-named table that was dropped and
//! re-created (container paths restart at `c000000`) misses on the stale
//! entry and reloads.
//!
//! Entries come in two **tiers**, matching the two scan paths:
//!
//! * **decoded** — a plain [`Arc<Batch>`], charged at decoded byte size, and
//! * **encoded** — an [`Arc<EncodedBatch>`] for compressed execution,
//!   charged at *encoded* byte size, so low-cardinality columns cache far
//!   more rows per budget byte.
//!
//! Both tiers share one key namespace: inserting either form replaces the
//! other, a lookup hits only its own tier (an encoded scan cannot use a
//! decoded entry and vice versa), and prefix invalidation (`drop_table`)
//! covers both. Capacity is bounded in charged bytes **per node** (a slice
//! of the cluster profile's `mem_bytes`, as each simulated node has its own
//! RAM), with LRU eviction. Projection-pushdown interacts with caching: an
//! entry remembers which columns it holds, and a lookup hits only if the
//! wanted set is covered — a cached `{a, b}` batch serves a later
//! `SELECT a`, but a `SELECT *` (wanted `None` ⇒ every column) must
//! re-decode and then replaces the narrow entry.
//!
//! Cost model: a hit charges `disk_cached_read` (memory-speed re-read) and
//! **zero** decode CPU; misses pay the disk read and the per-value decode
//! as before. Emits `scan.cache.{hit,miss,evict,invalidated}` per-node
//! counters through `vdr-obs`.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vdr_cluster::NodeId;
use vdr_columnar::{Batch, EncodedBatch};

/// A cached scan product: one tier per scan path.
#[derive(Clone)]
enum CachedBlock {
    Decoded(Arc<Batch>),
    Encoded(Arc<EncodedBatch>),
}

struct Entry {
    /// Content version tag: the container block's crc32.
    crc: u32,
    /// Lowercased names of the columns this entry holds; `None` means the
    /// whole block (covers any projection).
    cols: Option<HashSet<String>>,
    block: CachedBlock,
    /// Charged bytes: decoded size for the decoded tier, encoded size for
    /// the encoded tier.
    bytes: u64,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<(usize, String), Entry>,
    /// Decoded bytes currently cached per node id.
    bytes_per_node: HashMap<usize, u64>,
    /// Monotonic LRU clock.
    tick: u64,
}

/// The decoded-block cache. One instance serves the whole database; keys
/// carry the node id so each node has its own logical cache and byte
/// budget, as it would on real hardware.
pub struct BlockCache {
    inner: Mutex<Inner>,
    capacity_per_node: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl BlockCache {
    /// `capacity_per_node` bounds the decoded bytes each node may cache.
    pub fn new(capacity_per_node: u64) -> Self {
        BlockCache {
            inner: Mutex::new(Inner::default()),
            capacity_per_node: AtomicU64::new(capacity_per_node),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Shrink or grow the per-node byte budget (tests exercise eviction by
    /// lowering it). Takes effect on the next insert.
    pub fn set_capacity_per_node(&self, bytes: u64) {
        self.capacity_per_node.store(bytes, Ordering::Relaxed);
    }

    /// Look up the decoded batch for `(node, path)`. Hits require the
    /// content tag to match, the entry to be on the decoded tier, and the
    /// cached projection to cover `wanted` (`None` = all columns). A tag
    /// mismatch drops the stale entry and counts an invalidation; an
    /// uncovered projection or a tier mismatch counts a plain miss (the
    /// caller re-decodes and the wider/newer entry replaces this one).
    pub fn get(
        &self,
        node: NodeId,
        path: &str,
        crc: u32,
        wanted: Option<&HashSet<String>>,
    ) -> Option<Arc<Batch>> {
        match self.lookup(node, path, crc, wanted)? {
            CachedBlock::Decoded(b) => Some(b),
            CachedBlock::Encoded(_) => unreachable!("lookup filters tiers"),
        }
    }

    /// Encoded-tier counterpart of [`BlockCache::get`]: returns the cached
    /// [`EncodedBatch`] under the same crc/coverage rules.
    pub fn get_encoded(
        &self,
        node: NodeId,
        path: &str,
        crc: u32,
        wanted: Option<&HashSet<String>>,
    ) -> Option<Arc<EncodedBatch>> {
        match self.lookup_tier(node, path, crc, wanted, true)? {
            CachedBlock::Encoded(b) => Some(b),
            CachedBlock::Decoded(_) => unreachable!("lookup filters tiers"),
        }
    }

    fn lookup(
        &self,
        node: NodeId,
        path: &str,
        crc: u32,
        wanted: Option<&HashSet<String>>,
    ) -> Option<CachedBlock> {
        self.lookup_tier(node, path, crc, wanted, false)
    }

    fn lookup_tier(
        &self,
        node: NodeId,
        path: &str,
        crc: u32,
        wanted: Option<&HashSet<String>>,
        want_encoded: bool,
    ) -> Option<CachedBlock> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let key = (node.0, path.to_string());
        if let Some(e) = inner.entries.get_mut(&key) {
            if e.crc != crc {
                let bytes = e.bytes;
                inner.entries.remove(&key);
                *inner.bytes_per_node.entry(node.0).or_default() -= bytes;
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                vdr_obs::counter_on("scan.cache.invalidated", node.0, 1);
                vdr_obs::event_on(
                    "cache.invalidate",
                    node.0,
                    format!("path={path} reason=crc"),
                );
            } else {
                let tier_matches = matches!(e.block, CachedBlock::Encoded(_)) == want_encoded;
                let covered = match (&e.cols, wanted) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(have), Some(want)) => want.iter().all(|w| have.contains(w)),
                };
                if tier_matches && covered {
                    e.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    vdr_obs::counter_on("scan.cache.hit", node.0, 1);
                    return Some(e.block.clone());
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        vdr_obs::counter_on("scan.cache.miss", node.0, 1);
        None
    }

    /// Cache a decoded batch, charged at its decoded byte size. `cols` is
    /// the lowercased set of columns the batch holds (`None` for a full
    /// decode). Evicts the node's least-recently-used entries until the
    /// batch fits; a batch larger than the whole per-node budget is not
    /// cached at all.
    pub fn insert(
        &self,
        node: NodeId,
        path: &str,
        crc: u32,
        cols: Option<HashSet<String>>,
        batch: Arc<Batch>,
    ) {
        let bytes = batch.byte_size();
        self.insert_block(node, path, crc, cols, CachedBlock::Decoded(batch), bytes);
    }

    /// Cache an encoded-tier batch, charged at its *encoded* byte size —
    /// the point of the tier: a dictionary or RLE column occupies budget at
    /// compressed size, not expanded size.
    pub fn insert_encoded(
        &self,
        node: NodeId,
        path: &str,
        crc: u32,
        cols: Option<HashSet<String>>,
        batch: Arc<EncodedBatch>,
    ) {
        let bytes = batch.byte_size();
        self.insert_block(node, path, crc, cols, CachedBlock::Encoded(batch), bytes);
    }

    fn insert_block(
        &self,
        node: NodeId,
        path: &str,
        crc: u32,
        cols: Option<HashSet<String>>,
        block: CachedBlock,
        bytes: u64,
    ) {
        let capacity = self.capacity_per_node.load(Ordering::Relaxed);
        if bytes > capacity {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let key = (node.0, path.to_string());
        if let Some(old) = inner.entries.remove(&key) {
            *inner.bytes_per_node.entry(node.0).or_default() -= old.bytes;
        }
        while inner.bytes_per_node.get(&node.0).copied().unwrap_or(0) + bytes > capacity {
            let victim = inner
                .entries
                .iter()
                .filter(|((n, _), _)| *n == node.0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            let freed = inner.entries.remove(&victim).expect("victim present").bytes;
            *inner.bytes_per_node.entry(node.0).or_default() -= freed;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            vdr_obs::counter_on("scan.cache.evict", node.0, 1);
            vdr_obs::event_on(
                "cache.evict",
                node.0,
                format!("path={} freed={freed}", victim.1),
            );
        }
        *inner.bytes_per_node.entry(node.0).or_default() += bytes;
        inner.entries.insert(
            key,
            Entry {
                crc,
                cols,
                block,
                bytes,
                last_used: tick,
            },
        );
    }

    /// Drop every entry (on any node) whose container path starts with
    /// `prefix` — the `drop_table` hook (`tables/<name>/`).
    pub fn invalidate_prefix(&self, prefix: &str) {
        let mut inner = self.inner.lock();
        let victims: Vec<(usize, String)> = inner
            .entries
            .keys()
            .filter(|(_, p)| p.starts_with(prefix))
            .cloned()
            .collect();
        for key in victims {
            let e = inner.entries.remove(&key).expect("victim present");
            *inner.bytes_per_node.entry(key.0).or_default() -= e.bytes;
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            vdr_obs::counter_on("scan.cache.invalidated", key.0, 1);
            vdr_obs::event_on(
                "cache.invalidate",
                key.0,
                format!("path={} reason=drop prefix={prefix}", key.1),
            );
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Number of cached entries across all nodes.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of encoded-tier entries across all nodes.
    pub fn encoded_len(&self) -> usize {
        self.inner
            .lock()
            .entries
            .values()
            .filter(|e| matches!(e.block, CachedBlock::Encoded(_)))
            .count()
    }

    /// Charged bytes cached on `node` (decoded entries at decoded size,
    /// encoded entries at encoded size).
    pub fn bytes_on(&self, node: NodeId) -> u64 {
        self.inner
            .lock()
            .bytes_per_node
            .get(&node.0)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdr_columnar::{Column, DataType, Schema};

    fn batch(rows: i64) -> Arc<Batch> {
        Arc::new(
            Batch::new(
                Schema::of(&[("id", DataType::Int64)]),
                vec![Column::from_i64((0..rows).collect())],
            )
            .unwrap(),
        )
    }

    fn set(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn projection_coverage_rules() {
        let cache = BlockCache::new(1 << 20);
        let b = batch(10);
        // Narrow entry serves an equal-or-narrower projection only.
        cache.insert(
            NodeId(0),
            "tables/t/c0",
            7,
            Some(set(&["a", "b"])),
            b.clone(),
        );
        assert!(cache
            .get(NodeId(0), "tables/t/c0", 7, Some(&set(&["a"])))
            .is_some());
        assert!(cache
            .get(NodeId(0), "tables/t/c0", 7, Some(&set(&["a", "b"])))
            .is_some());
        assert!(cache
            .get(NodeId(0), "tables/t/c0", 7, Some(&set(&["c"])))
            .is_none());
        assert!(cache.get(NodeId(0), "tables/t/c0", 7, None).is_none());
        // Full entry serves everything.
        cache.insert(NodeId(0), "tables/t/c0", 7, None, b);
        assert!(cache.get(NodeId(0), "tables/t/c0", 7, None).is_some());
        assert!(cache
            .get(NodeId(0), "tables/t/c0", 7, Some(&set(&["z"])))
            .is_some());
    }

    #[test]
    fn crc_mismatch_invalidates() {
        let cache = BlockCache::new(1 << 20);
        cache.insert(NodeId(1), "tables/t/c0", 1, None, batch(5));
        assert!(cache.get(NodeId(1), "tables/t/c0", 2, None).is_none());
        assert_eq!(cache.invalidations(), 1);
        // The stale entry is gone entirely.
        assert!(cache.is_empty());
    }

    #[test]
    fn nodes_have_separate_budgets_and_lru_eviction() {
        let b = batch(1000);
        let size = b.byte_size();
        // Budget fits exactly two batches per node.
        let cache = BlockCache::new(size * 2);
        cache.insert(NodeId(0), "p0", 0, None, b.clone());
        cache.insert(NodeId(0), "p1", 0, None, b.clone());
        cache.insert(NodeId(1), "p0", 0, None, b.clone());
        assert_eq!(cache.len(), 3, "node budgets are independent");
        // Touch p0 so p1 becomes the LRU victim.
        assert!(cache.get(NodeId(0), "p0", 0, None).is_some());
        cache.insert(NodeId(0), "p2", 0, None, b.clone());
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(NodeId(0), "p1", 0, None).is_none(), "LRU evicted");
        assert!(cache.get(NodeId(0), "p0", 0, None).is_some());
        assert!(cache.get(NodeId(0), "p2", 0, None).is_some());
        assert!(cache.bytes_on(NodeId(0)) <= size * 2);
        // An oversized batch is refused outright.
        let tiny = BlockCache::new(8);
        tiny.insert(NodeId(0), "p", 0, None, b);
        assert!(tiny.is_empty());
    }

    #[test]
    fn prefix_invalidation_hits_all_nodes() {
        let cache = BlockCache::new(1 << 20);
        cache.insert(NodeId(0), "tables/t/c0", 0, None, batch(1));
        cache.insert(NodeId(1), "tables/t/c0", 0, None, batch(1));
        cache.insert(NodeId(0), "tables/u/c0", 0, None, batch(1));
        cache.invalidate_prefix("tables/t/");
        assert_eq!(cache.len(), 1);
        assert!(cache.get(NodeId(0), "tables/u/c0", 0, None).is_some());
    }

    fn encoded_batch(rows: usize) -> Arc<EncodedBatch> {
        let b = Batch::new(
            Schema::of(&[("k", DataType::Int64)]),
            vec![Column::from_i64(vec![7; rows])],
        )
        .unwrap();
        let bytes = vdr_columnar::encode_batch(&b);
        let (eb, _) = vdr_columnar::decode_batch_encoded(&bytes, None).unwrap();
        assert!(eb.num_encoded() > 0, "constant column must stay encoded");
        Arc::new(eb)
    }

    #[test]
    fn encoded_tier_charges_encoded_bytes() {
        let eb = encoded_batch(10_000);
        let decoded_size = batch(10_000).byte_size();
        assert!(eb.byte_size() * 10 < decoded_size);
        // A budget far below decoded size still accepts the encoded entry.
        let cache = BlockCache::new(decoded_size / 4);
        cache.insert_encoded(NodeId(0), "tables/t/c0", 5, None, eb.clone());
        assert_eq!(cache.encoded_len(), 1);
        assert_eq!(cache.bytes_on(NodeId(0)), eb.byte_size());
        assert!(cache
            .get_encoded(NodeId(0), "tables/t/c0", 5, None)
            .is_some());
    }

    #[test]
    fn tiers_share_keys_but_not_hits() {
        let cache = BlockCache::new(1 << 20);
        cache.insert_encoded(NodeId(0), "tables/t/c0", 5, None, encoded_batch(100));
        // A decoded-path lookup must not see the encoded entry (tier miss,
        // not invalidation — the entry survives).
        assert!(cache.get(NodeId(0), "tables/t/c0", 5, None).is_none());
        assert_eq!(cache.invalidations(), 0);
        assert!(cache
            .get_encoded(NodeId(0), "tables/t/c0", 5, None)
            .is_some());
        // Inserting the decoded form replaces the encoded entry outright.
        cache.insert(NodeId(0), "tables/t/c0", 5, None, batch(100));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.encoded_len(), 0);
        assert!(cache
            .get_encoded(NodeId(0), "tables/t/c0", 5, None)
            .is_none());
        assert!(cache.get(NodeId(0), "tables/t/c0", 5, None).is_some());
        // crc mismatch invalidates encoded entries just like decoded ones.
        cache.insert_encoded(NodeId(0), "tables/t/c1", 5, None, encoded_batch(100));
        assert!(cache
            .get_encoded(NodeId(0), "tables/t/c1", 6, None)
            .is_none());
        assert_eq!(cache.invalidations(), 1);
    }

    #[test]
    fn prefix_invalidation_covers_both_tiers() {
        let cache = BlockCache::new(1 << 20);
        cache.insert(NodeId(0), "tables/t/c0", 0, None, batch(1));
        cache.insert_encoded(NodeId(1), "tables/t/c1", 0, None, encoded_batch(100));
        cache.insert_encoded(NodeId(0), "tables/u/c0", 0, None, encoded_batch(100));
        cache.invalidate_prefix("tables/t/");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.encoded_len(), 1);
        assert!(cache
            .get_encoded(NodeId(0), "tables/u/c0", 0, None)
            .is_some());
    }
}
