//! Segment storage: each node stores its table segment as a series of
//! encoded, checksummed columnar *containers* (ROS-style) on its simulated
//! disk.

use crate::catalog::TableDef;
use crate::error::{DbError, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use vdr_cluster::{NodeId, PhaseRecorder, SimCluster};
use vdr_columnar::{decode_batch, encode_batch, Batch};

/// Metadata for one on-disk container.
#[derive(Debug, Clone)]
pub struct ContainerMeta {
    pub path: String,
    pub rows: u64,
    pub bytes: u64,
}

/// Per-table, per-node container lists.
#[derive(Default)]
struct TableMeta {
    /// Indexed by node id.
    segments: Vec<Vec<ContainerMeta>>,
}

/// The storage layer across all nodes.
pub struct SegmentStore {
    cluster: SimCluster,
    meta: RwLock<HashMap<String, TableMeta>>,
}

impl SegmentStore {
    pub fn new(cluster: SimCluster) -> Self {
        SegmentStore {
            cluster,
            meta: RwLock::new(HashMap::new()),
        }
    }

    fn key(table: &str) -> String {
        table.to_ascii_lowercase()
    }

    /// Append one batch as a new container in `table`'s segment on `node`.
    /// Charges the disk write to `rec`.
    pub fn append(
        &self,
        table: &str,
        node: NodeId,
        batch: &Batch,
        rec: &PhaseRecorder,
    ) -> Result<()> {
        if batch.num_rows() == 0 {
            return Ok(());
        }
        let key = Self::key(table);
        let block = encode_batch(batch);
        let bytes = block.len() as u64;
        let mut meta = self.meta.write();
        let tm = meta.entry(key.clone()).or_insert_with(|| TableMeta {
            segments: vec![Vec::new(); self.cluster.num_nodes()],
        });
        if tm.segments.len() != self.cluster.num_nodes() {
            return Err(DbError::Exec("cluster size changed under storage".into()));
        }
        let idx = tm.segments[node.0].len();
        let path = format!("tables/{key}/c{idx:06}");
        self.cluster.node(node).disk().write(path.clone(), block);
        rec.disk_write(node, bytes);
        tm.segments[node.0].push(ContainerMeta {
            path,
            rows: batch.num_rows() as u64,
            bytes,
        });
        Ok(())
    }

    /// Containers of `table` on `node`.
    pub fn containers(&self, table: &str, node: NodeId) -> Vec<ContainerMeta> {
        self.meta
            .read()
            .get(&Self::key(table))
            .map(|tm| tm.segments[node.0].clone())
            .unwrap_or_default()
    }

    /// Rows of `table` held by each node.
    pub fn segment_rows(&self, table: &str) -> Vec<u64> {
        let meta = self.meta.read();
        match meta.get(&Self::key(table)) {
            Some(tm) => tm
                .segments
                .iter()
                .map(|cs| cs.iter().map(|c| c.rows).sum())
                .collect(),
            None => vec![0; self.cluster.num_nodes()],
        }
    }

    /// Total rows in `table`.
    pub fn total_rows(&self, table: &str) -> u64 {
        self.segment_rows(table).iter().sum()
    }

    /// On-disk bytes of `table` held by each node.
    pub fn segment_bytes(&self, table: &str) -> Vec<u64> {
        let meta = self.meta.read();
        match meta.get(&Self::key(table)) {
            Some(tm) => tm
                .segments
                .iter()
                .map(|cs| cs.iter().map(|c| c.bytes).sum())
                .collect(),
            None => vec![0; self.cluster.num_nodes()],
        }
    }

    /// Read and decode every container of `table` on `node`, charging cold
    /// disk reads (or cached re-reads) and decode CPU to `rec`.
    pub fn scan_node(
        &self,
        table: &str,
        node: NodeId,
        rec: &PhaseRecorder,
        cached: bool,
    ) -> Result<Vec<Batch>> {
        self.scan_node_slice(table, node, 0, 1, rec, cached)
    }

    /// Read the containers assigned to UDx instance `slice` of `num_slices`
    /// on `node` (containers are dealt round-robin to instances, so
    /// concurrent instances never share a container).
    pub fn scan_node_slice(
        &self,
        table: &str,
        node: NodeId,
        slice: usize,
        num_slices: usize,
        rec: &PhaseRecorder,
        cached: bool,
    ) -> Result<Vec<Batch>> {
        assert!(slice < num_slices, "slice index out of range");
        let containers = self.containers(table, node);
        let disk = self.cluster.node(node).disk();
        let scan_cost = self.cluster.profile().costs.db_scan_ns_per_value;
        let mut out = Vec::new();
        for c in containers
            .iter()
            .enumerate()
            .filter(|(i, _)| i % num_slices == slice)
            .map(|(_, c)| c)
        {
            let raw = disk.read(&c.path)?;
            if cached {
                rec.disk_cached_read(node, c.bytes);
            } else {
                rec.disk_read(node, c.bytes);
            }
            let batch = decode_batch(&raw)?;
            rec.cpu_work(node, batch.num_values() as f64, scan_cost);
            out.push(batch);
        }
        Ok(out)
    }

    /// Remove `table`'s containers everywhere.
    pub fn drop_table(&self, table: &str) {
        let key = Self::key(table);
        if let Some(tm) = self.meta.write().remove(&key) {
            for (node_idx, containers) in tm.segments.iter().enumerate() {
                let disk = self.cluster.node(NodeId(node_idx)).disk();
                for c in containers {
                    disk.delete(&c.path);
                }
            }
        }
    }

    /// Load a stream of batches into a table according to its segmentation,
    /// chunking each node's share into containers. Returns rows loaded.
    pub fn load(
        &self,
        def: &TableDef,
        batches: impl IntoIterator<Item = Batch>,
        rec: &PhaseRecorder,
    ) -> Result<u64> {
        let n = self.cluster.num_nodes();
        let mut start_row = self.total_rows(&def.name);
        let mut loaded = 0u64;
        for batch in batches {
            let parts = def.segmentation.split(&batch, n, start_row)?;
            for (node_idx, part) in parts.into_iter().enumerate() {
                self.append(&def.name, NodeId(node_idx), &part, rec)?;
            }
            start_row += batch.num_rows() as u64;
            loaded += batch.num_rows() as u64;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmentation::Segmentation;
    use vdr_cluster::PhaseKind;
    use vdr_columnar::{Column, DataType, Schema};

    fn setup() -> (SimCluster, SegmentStore, TableDef) {
        let cluster = SimCluster::for_tests(3);
        let store = SegmentStore::new(cluster.clone());
        let def = TableDef {
            name: "T".into(),
            schema: Schema::of(&[("id", DataType::Int64)]),
            segmentation: Segmentation::RoundRobin,
        };
        (cluster, store, def)
    }

    fn rec(n: usize) -> PhaseRecorder {
        PhaseRecorder::new("t", PhaseKind::Sequential, n)
    }

    fn ids(n: i64) -> Batch {
        Batch::new(
            Schema::of(&[("id", DataType::Int64)]),
            vec![Column::from_i64((0..n).collect())],
        )
        .unwrap()
    }

    #[test]
    fn load_and_scan_roundtrip() {
        let (cluster, store, def) = setup();
        let r = rec(cluster.num_nodes());
        let loaded = store.load(&def, vec![ids(90), ids(9)], &r).unwrap();
        assert_eq!(loaded, 99);
        assert_eq!(store.total_rows("t"), 99);
        assert_eq!(store.segment_rows("T"), vec![33, 33, 33]);

        let mut all = 0;
        for node in cluster.node_ids() {
            for b in store.scan_node("t", node, &r, false).unwrap() {
                all += b.num_rows();
            }
        }
        assert_eq!(all, 99);
    }

    #[test]
    fn scan_charges_disk_and_cpu() {
        let (cluster, store, def) = setup();
        let load_rec = rec(3);
        store.load(&def, vec![ids(3000)], &load_rec).unwrap();
        let r = rec(3);
        store.scan_node("t", NodeId(0), &r, false).unwrap();
        let report = r.finish(cluster.profile());
        assert!(report.total_disk_read > 0);
        assert!(report.total_cpu_core_ns > 0.0);
    }

    #[test]
    fn slices_partition_containers_exactly_once() {
        let (cluster, store, def) = setup();
        let r = rec(3);
        // 5 containers per node.
        for _ in 0..5 {
            store.load(&def, vec![ids(300)], &r).unwrap();
        }
        let node = NodeId(1);
        let full: usize = store
            .scan_node("t", node, &r, false)
            .unwrap()
            .iter()
            .map(Batch::num_rows)
            .sum();
        let mut sliced = 0;
        for s in 0..4 {
            sliced += store
                .scan_node_slice("t", node, s, 4, &r, false)
                .unwrap()
                .iter()
                .map(Batch::num_rows)
                .sum::<usize>();
        }
        assert_eq!(full, sliced);
        let _ = cluster;
    }

    #[test]
    fn empty_batches_create_no_containers() {
        let (_, store, def) = setup();
        let r = rec(3);
        store.load(&def, vec![ids(0)], &r).unwrap();
        assert_eq!(store.total_rows("t"), 0);
        assert!(store.containers("t", NodeId(0)).is_empty());
    }

    #[test]
    fn drop_table_frees_disk() {
        let (cluster, store, def) = setup();
        let r = rec(3);
        store.load(&def, vec![ids(300)], &r).unwrap();
        assert!(cluster.node(NodeId(0)).disk().used_bytes() > 0);
        store.drop_table("T");
        assert_eq!(cluster.node(NodeId(0)).disk().used_bytes(), 0);
        assert_eq!(store.total_rows("t"), 0);
    }

    #[test]
    fn skewed_load_produces_uneven_segments() {
        let cluster = SimCluster::for_tests(2);
        let store = SegmentStore::new(cluster.clone());
        let def = TableDef {
            name: "S".into(),
            schema: Schema::of(&[("id", DataType::Int64)]),
            segmentation: Segmentation::Skewed {
                weights: vec![4.0, 1.0],
            },
        };
        let r = rec(2);
        store.load(&def, vec![ids(5000)], &r).unwrap();
        let rows = store.segment_rows("s");
        assert!(rows[0] > rows[1] * 3, "{rows:?}");
        assert_eq!(rows[0] + rows[1], 5000);
    }
}
