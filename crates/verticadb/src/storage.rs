//! Segment storage: each node stores its table segment as a series of
//! encoded, checksummed columnar *containers* (ROS-style) on its simulated
//! disk.
//!
//! The scan path does three things a naive "read + decode everything"
//! loop would not:
//!
//! * **Projection pushdown** — callers pass the set of referenced columns
//!   and only those payloads are decoded
//!   ([`vdr_columnar::decode_batch_columns`]); decode CPU is charged per
//!   *decoded* value, not per stored value.
//! * **Decoded-block cache** — a node-local LRU of decoded batches keyed by
//!   `(node, container path)` and validated by the container's crc32
//!   ([`crate::blockcache::BlockCache`]). Hits charge a memory-speed
//!   `disk_cached_read` and zero decode CPU.
//! * **Parallel container decode** — each node's containers are decoded on
//!   the rayon pool, mirroring a real node's per-core scan threads.
//! * **Compressed execution** — [`SegmentStore::scan_node_encoded`] returns
//!   [`EncodedBatch`]es whose Rle/Dictionary columns stay in run/code form
//!   for the executor's encoded kernels and late materialization; those
//!   entries cache at *encoded* size on the block cache's encoded tier.

use crate::blockcache::BlockCache;
use crate::catalog::TableDef;
use crate::error::{DbError, Result};
use parking_lot::RwLock;
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vdr_cluster::{NodeId, PhaseRecorder, SimCluster};
use vdr_columnar::{
    block_checksum, block_column_info, decode_batch_columns, decode_batch_encoded, encode_batch,
    encoding::Encoding, Batch, EncodedBatch,
};

/// Fraction of a node's RAM given to the decoded-block cache (1/32 of the
/// profile's `mem_bytes` — the rest belongs to the resource pools).
const CACHE_MEM_FRACTION: u64 = 32;

/// Per-column storage facts for one container: the encoding the block
/// writer chose and the encoded-vs-decoded byte sizes. Surfaced through
/// `v_monitor.storage_containers`.
#[derive(Debug, Clone)]
pub struct ColumnStat {
    pub name: String,
    pub encoding: Encoding,
    /// Bytes of the encoded payload inside the container block.
    pub encoded_bytes: u64,
    /// Bytes the column occupies once decoded to plain form.
    pub decoded_bytes: u64,
}

/// Metadata for one on-disk container.
#[derive(Debug, Clone)]
pub struct ContainerMeta {
    pub path: String,
    pub rows: u64,
    pub bytes: u64,
    /// crc32 of the encoded block body; doubles as the block-cache's
    /// content version tag.
    pub crc: u32,
    /// Per-column encoding and size facts.
    pub columns: Vec<ColumnStat>,
}

/// Per-table, per-node container lists.
#[derive(Default)]
struct TableMeta {
    /// Indexed by node id.
    segments: Vec<Vec<ContainerMeta>>,
}

/// The storage layer across all nodes.
pub struct SegmentStore {
    cluster: SimCluster,
    meta: RwLock<HashMap<String, TableMeta>>,
    cache: BlockCache,
}

impl SegmentStore {
    pub fn new(cluster: SimCluster) -> Self {
        let cache = BlockCache::new(cluster.profile().mem_bytes / CACHE_MEM_FRACTION);
        SegmentStore {
            cluster,
            meta: RwLock::new(HashMap::new()),
            cache,
        }
    }

    /// The node-local decoded-block cache (stats + capacity control).
    pub fn block_cache(&self) -> &BlockCache {
        &self.cache
    }

    fn key(table: &str) -> String {
        table.to_ascii_lowercase()
    }

    /// Append one batch as a new container in `table`'s segment on `node`.
    /// Charges the disk write to `rec`.
    pub fn append(
        &self,
        table: &str,
        node: NodeId,
        batch: &Batch,
        rec: &PhaseRecorder,
    ) -> Result<()> {
        if batch.num_rows() == 0 {
            return Ok(());
        }
        let key = Self::key(table);
        let block = encode_batch(batch);
        let bytes = block.len() as u64;
        let crc = block_checksum(&block)?;
        let columns = block_column_info(&block)?
            .into_iter()
            .zip(batch.columns())
            .map(|(info, col)| ColumnStat {
                name: info.name,
                encoding: info.encoding,
                encoded_bytes: info.encoded_bytes,
                decoded_bytes: col.byte_size(),
            })
            .collect();
        let mut meta = self.meta.write();
        let tm = meta.entry(key.clone()).or_insert_with(|| TableMeta {
            segments: vec![Vec::new(); self.cluster.num_nodes()],
        });
        if tm.segments.len() != self.cluster.num_nodes() {
            return Err(DbError::Exec("cluster size changed under storage".into()));
        }
        let idx = tm.segments[node.0].len();
        let path = format!("tables/{key}/c{idx:06}");
        self.cluster.node(node).disk().write(path.clone(), block);
        rec.disk_write(node, bytes);
        tm.segments[node.0].push(ContainerMeta {
            path,
            rows: batch.num_rows() as u64,
            bytes,
            crc,
            columns,
        });
        Ok(())
    }

    /// Containers of `table` on `node`.
    pub fn containers(&self, table: &str, node: NodeId) -> Vec<ContainerMeta> {
        self.meta
            .read()
            .get(&Self::key(table))
            .map(|tm| tm.segments[node.0].clone())
            .unwrap_or_default()
    }

    /// Rows of `table` held by each node.
    pub fn segment_rows(&self, table: &str) -> Vec<u64> {
        let meta = self.meta.read();
        match meta.get(&Self::key(table)) {
            Some(tm) => tm
                .segments
                .iter()
                .map(|cs| cs.iter().map(|c| c.rows).sum())
                .collect(),
            None => vec![0; self.cluster.num_nodes()],
        }
    }

    /// Total rows in `table`.
    pub fn total_rows(&self, table: &str) -> u64 {
        self.segment_rows(table).iter().sum()
    }

    /// On-disk bytes of `table` held by each node.
    pub fn segment_bytes(&self, table: &str) -> Vec<u64> {
        let meta = self.meta.read();
        match meta.get(&Self::key(table)) {
            Some(tm) => tm
                .segments
                .iter()
                .map(|cs| cs.iter().map(|c| c.bytes).sum())
                .collect(),
            None => vec![0; self.cluster.num_nodes()],
        }
    }

    /// Read and decode every container of `table` on `node`, charging cold
    /// disk reads (or cached re-reads) and decode CPU to `rec`.
    pub fn scan_node(
        &self,
        table: &str,
        node: NodeId,
        rec: &PhaseRecorder,
        cached: bool,
    ) -> Result<Vec<Arc<Batch>>> {
        self.scan_node_slice(table, node, 0, 1, rec, cached, None)
    }

    /// [`Self::scan_node`] with projection pushdown: only the columns named
    /// in `wanted` are decoded (`None` decodes all).
    pub fn scan_node_projected(
        &self,
        table: &str,
        node: NodeId,
        rec: &PhaseRecorder,
        cached: bool,
        wanted: Option<&HashSet<String>>,
    ) -> Result<Vec<Arc<Batch>>> {
        self.scan_node_slice(table, node, 0, 1, rec, cached, wanted)
    }

    /// Read the containers assigned to UDx instance `slice` of `num_slices`
    /// on `node` (containers are dealt round-robin to instances, so
    /// concurrent instances never share a container), decoding only the
    /// `wanted` columns (`None` = all). Containers are decoded in parallel
    /// on the rayon pool; cache hits skip decode entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn scan_node_slice(
        &self,
        table: &str,
        node: NodeId,
        slice: usize,
        num_slices: usize,
        rec: &PhaseRecorder,
        cached: bool,
        wanted: Option<&HashSet<String>>,
    ) -> Result<Vec<Arc<Batch>>> {
        assert!(slice < num_slices, "slice index out of range");
        // Lowercase once so the cache's coverage check is a plain set test.
        let wanted_lc: Option<HashSet<String>> =
            wanted.map(|w| w.iter().map(|s| s.to_ascii_lowercase()).collect());
        let containers = self.containers(table, node);
        let disk = self.cluster.node(node).disk();
        let scan_cost = self.cluster.profile().costs.db_scan_ns_per_value;
        let cols_skipped = AtomicU64::new(0);
        let out: Vec<Arc<Batch>> = containers
            .iter()
            .enumerate()
            .filter(|(i, _)| i % num_slices == slice)
            .map(|(_, c)| c)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|c| -> Result<Arc<Batch>> {
                if let Some(hit) = self.cache.get(node, &c.path, c.crc, wanted_lc.as_ref()) {
                    // Decoded bytes are already resident: memory-speed
                    // re-read of the container, no decode CPU at all.
                    rec.disk_cached_read(node, c.bytes);
                    return Ok(hit);
                }
                let raw = disk.read(&c.path)?;
                if cached {
                    rec.disk_cached_read(node, c.bytes);
                } else {
                    rec.disk_read(node, c.bytes);
                }
                let started = Instant::now();
                let (batch, stats) = decode_batch_columns(&raw, wanted_lc.as_ref())?;
                let values = stats.values_decoded();
                rec.cpu_work(node, values as f64, scan_cost);
                if values > 0 {
                    vdr_obs::observe_on(
                        "scan.decode.ns_per_value",
                        node.0,
                        started.elapsed().as_nanos() as f64 / values as f64,
                    );
                }
                cols_skipped.fetch_add(stats.cols_skipped() as u64, Ordering::Relaxed);
                let batch = Arc::new(batch);
                let cache_cols = if stats.cols_decoded == stats.cols_total {
                    None
                } else {
                    Some(
                        batch
                            .schema()
                            .fields()
                            .iter()
                            .map(|f| f.name.to_ascii_lowercase())
                            .collect(),
                    )
                };
                self.cache
                    .insert(node, &c.path, c.crc, cache_cols, Arc::clone(&batch));
                Ok(batch)
            })
            .collect::<Result<Vec<_>>>()?;
        let skipped = cols_skipped.load(Ordering::Relaxed);
        if skipped > 0 {
            vdr_obs::counter_on("exec.scan.cols_skipped", node.0, skipped);
        }
        Ok(out)
    }

    /// Compressed-execution scan: like [`Self::scan_node_projected`] but
    /// Rle/Dictionary columns stay in run/code form
    /// ([`vdr_columnar::decode_batch_encoded`]). Decode CPU is charged only
    /// for the eagerly decoded (Plain/DeltaVarint) columns — encoded
    /// columns' expansion is charged later, at late materialization, for
    /// surviving rows only. Results cache on the block cache's encoded
    /// tier, at encoded byte size.
    pub fn scan_node_encoded(
        &self,
        table: &str,
        node: NodeId,
        rec: &PhaseRecorder,
        cached: bool,
        wanted: Option<&HashSet<String>>,
    ) -> Result<Vec<Arc<EncodedBatch>>> {
        let wanted_lc: Option<HashSet<String>> =
            wanted.map(|w| w.iter().map(|s| s.to_ascii_lowercase()).collect());
        let containers = self.containers(table, node);
        let disk = self.cluster.node(node).disk();
        let scan_cost = self.cluster.profile().costs.db_scan_ns_per_value;
        let cols_skipped = AtomicU64::new(0);
        let out: Vec<Arc<EncodedBatch>> = containers
            .par_iter()
            .map(|c| -> Result<Arc<EncodedBatch>> {
                if let Some(hit) = self
                    .cache
                    .get_encoded(node, &c.path, c.crc, wanted_lc.as_ref())
                {
                    rec.disk_cached_read(node, c.bytes);
                    return Ok(hit);
                }
                let raw = disk.read(&c.path)?;
                if cached {
                    rec.disk_cached_read(node, c.bytes);
                } else {
                    rec.disk_read(node, c.bytes);
                }
                let started = Instant::now();
                let (batch, stats) = decode_batch_encoded(&raw, wanted_lc.as_ref())?;
                let values = stats.values_decoded();
                rec.cpu_work(node, values as f64, scan_cost);
                if values > 0 {
                    vdr_obs::observe_on(
                        "scan.decode.ns_per_value",
                        node.0,
                        started.elapsed().as_nanos() as f64 / values as f64,
                    );
                }
                cols_skipped.fetch_add(stats.cols_skipped() as u64, Ordering::Relaxed);
                let batch = Arc::new(batch);
                let covers_all = stats.cols_decoded + stats.cols_kept_encoded == stats.cols_total;
                let cache_cols = if covers_all {
                    None
                } else {
                    Some(
                        batch
                            .schema()
                            .fields()
                            .iter()
                            .map(|f| f.name.to_ascii_lowercase())
                            .collect(),
                    )
                };
                self.cache
                    .insert_encoded(node, &c.path, c.crc, cache_cols, Arc::clone(&batch));
                Ok(batch)
            })
            .collect::<Result<Vec<_>>>()?;
        let skipped = cols_skipped.load(Ordering::Relaxed);
        if skipped > 0 {
            vdr_obs::counter_on("exec.scan.cols_skipped", node.0, skipped);
        }
        Ok(out)
    }

    /// Remove `table`'s containers everywhere (disk and block cache).
    pub fn drop_table(&self, table: &str) {
        let key = Self::key(table);
        if let Some(tm) = self.meta.write().remove(&key) {
            for (node_idx, containers) in tm.segments.iter().enumerate() {
                let disk = self.cluster.node(NodeId(node_idx)).disk();
                for c in containers {
                    disk.delete(&c.path);
                }
            }
        }
        self.cache.invalidate_prefix(&format!("tables/{key}/"));
    }

    /// Load a stream of batches into a table according to its segmentation,
    /// chunking each node's share into containers. Returns rows loaded.
    pub fn load(
        &self,
        def: &TableDef,
        batches: impl IntoIterator<Item = Batch>,
        rec: &PhaseRecorder,
    ) -> Result<u64> {
        let n = self.cluster.num_nodes();
        let mut start_row = self.total_rows(&def.name);
        let mut loaded = 0u64;
        for batch in batches {
            let parts = def.segmentation.split(&batch, n, start_row)?;
            for (node_idx, part) in parts.into_iter().enumerate() {
                self.append(&def.name, NodeId(node_idx), &part, rec)?;
            }
            start_row += batch.num_rows() as u64;
            loaded += batch.num_rows() as u64;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmentation::Segmentation;
    use vdr_cluster::PhaseKind;
    use vdr_columnar::{Column, DataType, Schema};

    fn setup() -> (SimCluster, SegmentStore, TableDef) {
        let cluster = SimCluster::for_tests(3);
        let store = SegmentStore::new(cluster.clone());
        let def = TableDef {
            name: "T".into(),
            schema: Schema::of(&[("id", DataType::Int64)]),
            segmentation: Segmentation::RoundRobin,
        };
        (cluster, store, def)
    }

    fn rec(n: usize) -> PhaseRecorder {
        PhaseRecorder::new("t", PhaseKind::Sequential, n)
    }

    fn ids(n: i64) -> Batch {
        Batch::new(
            Schema::of(&[("id", DataType::Int64)]),
            vec![Column::from_i64((0..n).collect())],
        )
        .unwrap()
    }

    fn wide(n: i64) -> Batch {
        Batch::new(
            Schema::of(&[
                ("id", DataType::Int64),
                ("a", DataType::Float64),
                ("b", DataType::Float64),
                ("c", DataType::Float64),
            ]),
            vec![
                Column::from_i64((0..n).collect()),
                Column::from_f64((0..n).map(|v| v as f64).collect()),
                Column::from_f64((0..n).map(|v| v as f64 * 2.0).collect()),
                Column::from_f64((0..n).map(|v| v as f64 * 3.0).collect()),
            ],
        )
        .unwrap()
    }

    fn set(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn load_and_scan_roundtrip() {
        let (cluster, store, def) = setup();
        let r = rec(cluster.num_nodes());
        let loaded = store.load(&def, vec![ids(90), ids(9)], &r).unwrap();
        assert_eq!(loaded, 99);
        assert_eq!(store.total_rows("t"), 99);
        assert_eq!(store.segment_rows("T"), vec![33, 33, 33]);

        let mut all = 0;
        for node in cluster.node_ids() {
            for b in store.scan_node("t", node, &r, false).unwrap() {
                all += b.num_rows();
            }
        }
        assert_eq!(all, 99);
    }

    #[test]
    fn scan_charges_disk_and_cpu() {
        let (cluster, store, def) = setup();
        let load_rec = rec(3);
        store.load(&def, vec![ids(3000)], &load_rec).unwrap();
        let r = rec(3);
        store.scan_node("t", NodeId(0), &r, false).unwrap();
        let report = r.finish(cluster.profile());
        assert!(report.total_disk_read > 0);
        assert!(report.total_cpu_core_ns > 0.0);
    }

    #[test]
    fn projected_scan_decodes_fewer_values() {
        let cluster = SimCluster::for_tests(1);
        let store = SegmentStore::new(cluster.clone());
        let def = TableDef {
            name: "W".into(),
            schema: wide(1).schema().clone(),
            segmentation: Segmentation::RoundRobin,
        };
        store.load(&def, vec![wide(4000)], &rec(1)).unwrap();

        let full = rec(1);
        store.scan_node("w", NodeId(0), &full, false).unwrap();
        let full_cpu = full.finish(cluster.profile()).total_cpu_core_ns;

        // Fresh store so the cache can't serve the projected scan.
        let store2 = SegmentStore::new(cluster.clone());
        store2.load(&def, vec![wide(4000)], &rec(1)).unwrap();
        let narrow = rec(1);
        let batches = store2
            .scan_node_projected("w", NodeId(0), &narrow, false, Some(&set(&["id"])))
            .unwrap();
        let narrow_cpu = narrow.finish(cluster.profile()).total_cpu_core_ns;

        assert_eq!(batches[0].schema().names(), vec!["id"]);
        assert!(
            narrow_cpu * 3.0 < full_cpu,
            "1-of-4 columns should cost ~1/4 the decode CPU: {narrow_cpu} vs {full_cpu}"
        );
    }

    #[test]
    fn repeated_scan_hits_cache_with_zero_decode_cpu() {
        let (cluster, store, def) = setup();
        store.load(&def, vec![ids(3000)], &rec(3)).unwrap();
        store.scan_node("t", NodeId(0), &rec(3), false).unwrap();
        assert!(store.block_cache().hits() == 0);

        let r = rec(3);
        store.scan_node("t", NodeId(0), &r, false).unwrap();
        let report = r.finish(cluster.profile());
        assert!(store.block_cache().hits() > 0);
        assert_eq!(
            report.total_cpu_core_ns, 0.0,
            "cache hit must not charge decode CPU"
        );
        assert!(
            report.total_disk_read > 0,
            "hit still pays a cached re-read"
        );
    }

    #[test]
    fn wide_cached_batch_serves_narrow_projection() {
        let cluster = SimCluster::for_tests(1);
        let store = SegmentStore::new(cluster.clone());
        let def = TableDef {
            name: "W".into(),
            schema: wide(1).schema().clone(),
            segmentation: Segmentation::RoundRobin,
        };
        store.load(&def, vec![wide(100)], &rec(1)).unwrap();
        store.scan_node("w", NodeId(0), &rec(1), false).unwrap();
        let r = rec(1);
        let batches = store
            .scan_node_projected("w", NodeId(0), &r, false, Some(&set(&["A"])))
            .unwrap();
        assert!(store.block_cache().hits() > 0);
        // Served from the full-decode entry: all columns present.
        assert_eq!(batches[0].num_columns(), 4);
    }

    #[test]
    fn append_records_per_column_stats() {
        let cluster = SimCluster::for_tests(1);
        let store = SegmentStore::new(cluster.clone());
        let schema = Schema::of(&[("grp", DataType::Int64), ("x", DataType::Float64)]);
        let def = TableDef {
            name: "lc".into(),
            schema: schema.clone(),
            segmentation: Segmentation::RoundRobin,
        };
        let n = 4000i64;
        let batch = Batch::new(
            schema,
            vec![
                Column::from_i64((0..n).map(|i| i / 1000).collect()),
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        store.load(&def, vec![batch], &rec(1)).unwrap();
        let meta = store.containers("lc", NodeId(0));
        assert_eq!(meta.len(), 1);
        let grp = meta[0].columns.iter().find(|c| c.name == "grp").unwrap();
        assert_eq!(grp.encoding, Encoding::Rle);
        assert!(grp.encoded_bytes * 10 < grp.decoded_bytes, "{grp:?}");
        let x = meta[0].columns.iter().find(|c| c.name == "x").unwrap();
        assert_eq!(x.encoding, Encoding::Plain);
    }

    #[test]
    fn encoded_scan_keeps_rle_columns_and_caches_encoded() {
        let cluster = SimCluster::for_tests(1);
        let store = SegmentStore::new(cluster.clone());
        let schema = Schema::of(&[("grp", DataType::Int64), ("x", DataType::Float64)]);
        let def = TableDef {
            name: "lc".into(),
            schema: schema.clone(),
            segmentation: Segmentation::RoundRobin,
        };
        let n = 4000i64;
        let batch = Batch::new(
            schema,
            vec![
                Column::from_i64((0..n).map(|i| i / 1000).collect()),
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        store.load(&def, vec![batch], &rec(1)).unwrap();

        let r = rec(1);
        let ebs = store
            .scan_node_encoded("lc", NodeId(0), &r, false, None)
            .unwrap();
        assert_eq!(ebs.len(), 1);
        assert_eq!(ebs[0].num_encoded(), 1, "grp stays in run form");
        let cold = r.finish(cluster.profile());
        assert!(cold.total_disk_read > 0);

        // The entry sits on the encoded tier at encoded size — well below
        // the fully decoded footprint (the plain float column still costs
        // full size; the RLE column shrinks to a handful of runs).
        assert_eq!(store.block_cache().encoded_len(), 1);
        assert_eq!(store.block_cache().bytes_on(NodeId(0)), ebs[0].byte_size());
        let full_mask = vdr_columnar::Bitmap::all_valid(ebs[0].num_rows());
        let (full, _) = ebs[0].materialize(&full_mask, None).unwrap();
        assert!(ebs[0].byte_size() * 3 < full.byte_size() * 2);

        // Re-scan: encoded-tier hit, zero decode CPU.
        let r2 = rec(1);
        store
            .scan_node_encoded("lc", NodeId(0), &r2, false, None)
            .unwrap();
        assert!(store.block_cache().hits() > 0);
        assert_eq!(r2.finish(cluster.profile()).total_cpu_core_ns, 0.0);

        // A decoded-path scan of the same container misses (tier mismatch)
        // and replaces the entry with a decoded one.
        let r3 = rec(1);
        store.scan_node("lc", NodeId(0), &r3, false).unwrap();
        assert_eq!(store.block_cache().encoded_len(), 0);
        assert_eq!(store.block_cache().len(), 1);
    }

    #[test]
    fn drop_and_recreate_does_not_serve_stale_blocks() {
        let (_, store, def) = setup();
        store.load(&def, vec![ids(90)], &rec(3)).unwrap();
        store.scan_node("t", NodeId(0), &rec(3), false).unwrap();
        store.drop_table("t");
        assert!(store.block_cache().is_empty(), "drop must purge the cache");

        // Re-create under the same name: container paths repeat from
        // c000000, so only the crc tag tells old from new.
        store.load(&def, vec![ids(30)], &rec(3)).unwrap();
        let batches = store.scan_node("t", NodeId(0), &rec(3), false).unwrap();
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn slices_partition_containers_exactly_once() {
        let (cluster, store, def) = setup();
        let r = rec(3);
        // 5 containers per node.
        for _ in 0..5 {
            store.load(&def, vec![ids(300)], &r).unwrap();
        }
        let node = NodeId(1);
        let full: usize = store
            .scan_node("t", node, &r, false)
            .unwrap()
            .iter()
            .map(|b| b.num_rows())
            .sum();
        let mut sliced = 0;
        for s in 0..4 {
            sliced += store
                .scan_node_slice("t", node, s, 4, &r, false, None)
                .unwrap()
                .iter()
                .map(|b| b.num_rows())
                .sum::<usize>();
        }
        assert_eq!(full, sliced);
        let _ = cluster;
    }

    #[test]
    fn empty_batches_create_no_containers() {
        let (_, store, def) = setup();
        let r = rec(3);
        store.load(&def, vec![ids(0)], &r).unwrap();
        assert_eq!(store.total_rows("t"), 0);
        assert!(store.containers("t", NodeId(0)).is_empty());
    }

    #[test]
    fn drop_table_frees_disk() {
        let (cluster, store, def) = setup();
        let r = rec(3);
        store.load(&def, vec![ids(300)], &r).unwrap();
        assert!(cluster.node(NodeId(0)).disk().used_bytes() > 0);
        store.drop_table("T");
        assert_eq!(cluster.node(NodeId(0)).disk().used_bytes(), 0);
        assert_eq!(store.total_rows("t"), 0);
    }

    #[test]
    fn skewed_load_produces_uneven_segments() {
        let cluster = SimCluster::for_tests(2);
        let store = SegmentStore::new(cluster.clone());
        let def = TableDef {
            name: "S".into(),
            schema: Schema::of(&[("id", DataType::Int64)]),
            segmentation: Segmentation::Skewed {
                weights: vec![4.0, 1.0],
            },
        };
        let r = rec(2);
        store.load(&def, vec![ids(5000)], &r).unwrap();
        let rows = store.segment_rows("s");
        assert!(rows[0] > rows[1] * 3, "{rows:?}");
        assert_eq!(rows[0] + rows[1], 5000);
    }
}
