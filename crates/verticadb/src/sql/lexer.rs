//! SQL tokenizer.

use crate::error::{DbError, Result};
use std::fmt;

/// A lexical token. Identifiers keep their original spelling; keyword
/// recognition happens in the parser via case-insensitive comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // punctuation / operators
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Semicolon => f.write_str(";"),
            Token::Dot => f.write_str("."),
        }
    }
}

/// Tokenize SQL text. Strings use single quotes with `''` escaping; `--`
/// starts a line comment.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => return Err(DbError::Parse("unterminated string literal".into())),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&b'+') || bytes.get(j) == Some(&b'-') {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(|b| (*b as char).is_ascii_digit()) {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad integer literal '{text}'"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // Quoted identifier.
                    i += 1;
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'"' {
                        i += 1;
                    }
                    if i == bytes.len() {
                        return Err(DbError::Parse("unterminated quoted identifier".into()));
                    }
                    tokens.push(Token::Ident(input[start..i].to_string()));
                    i += 1;
                } else {
                    let start = i;
                    while i < bytes.len() {
                        let c = bytes[i] as char;
                        if c.is_ascii_alphanumeric() || c == '_' {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token::Ident(input[start..i].to_string()));
                }
            }
            other => {
                return Err(DbError::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 1.5 AND b <> 'x''y'").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::Str("x'y".into())));
    }

    #[test]
    fn numbers() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(tokenize("4.25").unwrap(), vec![Token::Float(4.25)]);
        assert_eq!(tokenize("1e3").unwrap(), vec![Token::Float(1000.0)]);
        assert_eq!(tokenize("2.5e-1").unwrap(), vec![Token::Float(0.25)]);
        // A trailing dot is a separate token (e.g. schema.table).
        assert_eq!(
            tokenize("1.x").unwrap(),
            vec![Token::Int(1), Token::Dot, Token::Ident("x".into())]
        );
    }

    #[test]
    fn comments_and_whitespace() {
        let toks = tokenize("SELECT -- comment\n 1").unwrap();
        assert_eq!(toks, vec![Token::Ident("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"My Table\"").unwrap();
        assert_eq!(toks, vec![Token::Ident("My Table".into())]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
    }

    #[test]
    fn operator_disambiguation() {
        let toks = tokenize("< <= <> > >= = !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::LtEq,
                Token::NotEq,
                Token::Gt,
                Token::GtEq,
                Token::Eq,
                Token::NotEq
            ]
        );
    }
}
