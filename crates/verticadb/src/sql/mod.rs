//! The SQL dialect: lexer, AST, and recursive-descent parser.
//!
//! Covers the statements the paper's workflows need (Figure 3, Figure 4,
//! Figure 10): `CREATE TABLE … SEGMENTED BY HASH(col)`, `INSERT`, `DROP
//! TABLE`, and `SELECT` with expressions, aggregates, `GROUP BY`,
//! `ORDER BY … LIMIT/OFFSET` (the ODBC range-fetch baseline), and Vertica's
//! UDx form `SELECT f(args USING PARAMETERS k='v') OVER (PARTITION BEST)`.
//! `FROM` accepts schema-qualified names (`v_monitor.metrics`), and
//! `PROFILE <statement>` executes the inner statement but returns its
//! per-node/per-phase profile rows instead of its result.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, OrderKey, Partition, SegSpec, SelectItem, SelectStmt, Statement};
pub use parser::parse;
