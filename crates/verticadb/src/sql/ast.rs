//! SQL abstract syntax tree.

use crate::expr::Expr;
use std::collections::BTreeMap;
use vdr_columnar::DataType;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
        segmentation: Option<SegSpec>,
    },
    /// `CREATE TABLE name AS SELECT …` — materialize a query's result (e.g.
    /// store in-database predictions as a table).
    CreateTableAs {
        name: String,
        query: Box<SelectStmt>,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Expr>>,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    /// `PROFILE <statement>` — execute the inner statement and return its
    /// per-node/per-phase profile rows instead of its result.
    Profile(Box<Statement>),
    /// `TRACE <statement>` — execute the inner statement with span
    /// recording forced on and return its span rows (one per closed span)
    /// instead of its result.
    Trace(Box<Statement>),
}

/// `SEGMENTED BY …` clause of CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub enum SegSpec {
    Hash(String),
    RoundRobin,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    /// `FROM table` — optional so `SELECT 1+1` works.
    pub from: Option<String>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// One element of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
    /// `COUNT(*) | COUNT([DISTINCT] e) | SUM(e) | AVG(e) | MIN(e) | MAX(e)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Expr>,
        /// `COUNT(DISTINCT e)`.
        distinct: bool,
        alias: Option<String>,
    },
    /// A user-defined transform function:
    /// `f(args USING PARAMETERS k='v', …) OVER (PARTITION BEST | BY col)`.
    Transform {
        name: String,
        args: Vec<Expr>,
        params: BTreeMap<String, String>,
        partition: Partition,
    },
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// The OVER clause of a transform invocation. `PARTITION BEST` lets the
/// planner split data resource-consciously across UDx instances; `PARTITION
/// BY col` routes rows by a column's hash (Section 3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum Partition {
    Best,
    By(String),
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub desc: bool,
}

impl SelectStmt {
    /// Whether any item is a transform invocation (transform selects are
    /// planned entirely differently).
    pub fn transform_item(&self) -> Option<&SelectItem> {
        self.items
            .iter()
            .find(|i| matches!(i, SelectItem::Transform { .. }))
    }

    /// Whether any item is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_func_names_roundtrip() {
        for (s, f) in [
            ("count", AggFunc::Count),
            ("SUM", AggFunc::Sum),
            ("Avg", AggFunc::Avg),
            ("MIN", AggFunc::Min),
            ("max", AggFunc::Max),
        ] {
            assert_eq!(AggFunc::from_name(s), Some(f));
        }
        assert_eq!(AggFunc::from_name("median"), None);
        assert_eq!(AggFunc::Sum.name(), "sum");
    }

    #[test]
    fn select_helpers() {
        let mut s = SelectStmt::default();
        assert!(s.transform_item().is_none());
        assert!(!s.has_aggregates());
        s.items.push(SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
            alias: None,
        });
        assert!(s.has_aggregates());
    }
}
