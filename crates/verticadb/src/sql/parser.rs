//! Recursive-descent SQL parser.

use super::ast::*;
use super::lexer::{tokenize, Token};
use crate::error::{DbError, Result};
use crate::expr::{BinOp, Expr};
use std::collections::BTreeMap;
use vdr_columnar::{DataType, Value};

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.accept_token(&Token::Semicolon);
    if let Some(tok) = p.peek() {
        return Err(DbError::Parse(format!("unexpected trailing token '{tok}'")));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Words that terminate an implicit alias.
const RESERVED: &[&str] = &[
    "FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "OFFSET", "AND", "OR", "NOT", "AS", "OVER",
    "USING", "SELECT", "BY", "ASC", "DESC", "IS", "NULL", "VALUES", "IN", "BETWEEN", "LIKE",
    "DISTINCT",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Result<Token> {
        let tok = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect_token(&mut self, want: &Token) -> Result<()> {
        let tok = self.next()?;
        if &tok != want {
            return Err(DbError::Parse(format!("expected '{want}', found '{tok}'")));
        }
        Ok(())
    }

    fn accept_token(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected '{kw}', found '{}'",
                self.peek()
                    .map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(DbError::Parse(format!(
                "expected identifier, found '{other}'"
            ))),
        }
    }

    /// An optionally schema-qualified name (`t` or `v_monitor.metrics`),
    /// flattened to one dotted string for table resolution.
    fn qualified_ident(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.accept_token(&Token::Dot) {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    // ------------------------------------------------------------ statements

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.accept_kw("PROFILE") {
            return Ok(Statement::Profile(Box::new(self.parse_statement()?)));
        }
        if self.accept_kw("TRACE") {
            return Ok(Statement::Trace(Box::new(self.parse_statement()?)));
        }
        if self.accept_kw("SELECT") {
            Ok(Statement::Select(self.parse_select()?))
        } else if self.accept_kw("CREATE") {
            self.parse_create()
        } else if self.accept_kw("INSERT") {
            self.parse_insert()
        } else if self.accept_kw("DROP") {
            self.parse_drop()
        } else {
            Err(DbError::Parse(format!(
                "expected a statement, found '{}'",
                self.peek()
                    .map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        if self.accept_kw("AS") {
            self.expect_kw("SELECT")?;
            let query = self.parse_select()?;
            return Ok(Statement::CreateTableAs {
                name,
                query: Box::new(query),
            });
        }
        self.expect_token(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let dtype = self.parse_type()?;
            columns.push((col, dtype));
            if !self.accept_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        let segmentation = if self.accept_kw("SEGMENTED") {
            if self.accept_kw("BY") {
                self.expect_kw("HASH")?;
                self.expect_token(&Token::LParen)?;
                let col = self.ident()?;
                self.expect_token(&Token::RParen)?;
                Some(SegSpec::Hash(col))
            } else {
                self.expect_kw("ROUND")?;
                self.expect_kw("ROBIN")?;
                Some(SegSpec::RoundRobin)
            }
        } else if self.accept_kw("UNSEGMENTED") {
            Some(SegSpec::RoundRobin)
        } else {
            None
        };
        Ok(Statement::CreateTable {
            name,
            columns,
            segmentation,
        })
    }

    fn parse_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        let dtype = match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" => DataType::Int64,
            "FLOAT" | "DOUBLE" | "REAL" | "NUMERIC" => DataType::Float64,
            "BOOLEAN" | "BOOL" => DataType::Bool,
            "VARCHAR" | "TEXT" | "CHAR" => {
                // Optional length, ignored (all strings are unbounded here).
                if self.accept_token(&Token::LParen) {
                    self.next()?;
                    self.expect_token(&Token::RParen)?;
                }
                DataType::Varchar
            }
            other => return Err(DbError::Parse(format!("unknown type '{other}'"))),
        };
        Ok(dtype)
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_token(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.accept_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            rows.push(row);
            if !self.accept_token(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let if_exists = if self.accept_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    // ---------------------------------------------------------------- select

    fn parse_select(&mut self) -> Result<SelectStmt> {
        let mut stmt = SelectStmt {
            items: vec![self.parse_select_item()?],
            ..Default::default()
        };
        while self.accept_token(&Token::Comma) {
            stmt.items.push(self.parse_select_item()?);
        }
        if self.accept_kw("FROM") {
            stmt.from = Some(self.qualified_ident()?);
        }
        if self.accept_kw("WHERE") {
            stmt.where_clause = Some(self.parse_expr()?);
        }
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                stmt.group_by.push(self.parse_expr()?);
                if !self.accept_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.accept_kw("DESC") {
                    true
                } else {
                    self.accept_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderKey { expr, desc });
                if !self.accept_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.accept_kw("LIMIT") {
            stmt.limit = Some(self.parse_u64()?);
        }
        if self.accept_kw("OFFSET") {
            stmt.offset = Some(self.parse_u64()?);
        }
        Ok(stmt)
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.next()? {
            Token::Int(v) if v >= 0 => Ok(v as u64),
            other => Err(DbError::Parse(format!(
                "expected a non-negative integer, found '{other}'"
            ))),
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.accept_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // A leading `name(` may be an aggregate, a transform, or a scalar
        // function inside a larger expression.
        if let (Some(Token::Ident(name)), Some(Token::LParen)) = (self.peek(), self.peek2()) {
            let name = name.clone();
            if !is_reserved(&name) {
                self.pos += 2; // consume name and '('
                let call = self.parse_call_body(&name)?;
                if self.accept_kw("OVER") {
                    self.expect_token(&Token::LParen)?;
                    self.expect_kw("PARTITION")?;
                    let partition = if self.accept_kw("BEST") {
                        Partition::Best
                    } else {
                        self.expect_kw("BY")?;
                        Partition::By(self.ident()?)
                    };
                    self.expect_token(&Token::RParen)?;
                    return Ok(SelectItem::Transform {
                        name,
                        args: call.args,
                        params: call.params,
                        partition,
                    });
                }
                if let Some(func) = AggFunc::from_name(&name) {
                    if !call.params.is_empty() {
                        return Err(DbError::Parse(format!(
                            "aggregate {name} takes no USING PARAMETERS"
                        )));
                    }
                    if call.distinct && func != AggFunc::Count {
                        return Err(DbError::Parse(format!(
                            "DISTINCT is only supported in COUNT, not {name}"
                        )));
                    }
                    let arg = match (call.star, call.args.len()) {
                        (true, 0) if func == AggFunc::Count => None,
                        (false, 1) => Some(call.args.into_iter().next().expect("one arg")),
                        _ => {
                            return Err(DbError::Parse(format!(
                                "aggregate {name} takes exactly one argument (or * for COUNT)"
                            )))
                        }
                    };
                    if call.distinct && arg.is_none() {
                        return Err(DbError::Parse("COUNT(DISTINCT *) is not valid".into()));
                    }
                    let alias = self.parse_alias()?;
                    return Ok(SelectItem::Aggregate {
                        func,
                        arg,
                        distinct: call.distinct,
                        alias,
                    });
                }
                if !call.params.is_empty() {
                    return Err(DbError::Parse(format!(
                        "USING PARAMETERS requires an OVER clause on {name}"
                    )));
                }
                if call.star {
                    return Err(DbError::Parse(format!("'*' not valid in call to {name}")));
                }
                if call.distinct {
                    return Err(DbError::Parse(format!(
                        "DISTINCT not valid in call to {name}"
                    )));
                }
                // A scalar function: fold it back into expression parsing so
                // `sqrt(x) + 1` works.
                let primary = Expr::Func {
                    name,
                    args: call.args,
                };
                let expr = self.parse_binary_continuation(primary, 0)?;
                let alias = self.parse_alias()?;
                return Ok(SelectItem::Expr { expr, alias });
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.accept_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        if let Some(Token::Ident(name)) = self.peek() {
            if !is_reserved(name) {
                let name = name.clone();
                self.pos += 1;
                return Ok(Some(name));
            }
        }
        Ok(None)
    }

    /// Arguments plus optional `USING PARAMETERS k='v', …`; consumes the
    /// closing paren.
    fn parse_call_body(&mut self, name: &str) -> Result<Call> {
        let mut call = Call::default();
        if self.accept_token(&Token::RParen) {
            return Ok(call);
        }
        if self.accept_kw("DISTINCT") {
            call.distinct = true;
        }
        if self.accept_token(&Token::Star) {
            call.star = true;
        } else if !self.peek_kw("USING") {
            loop {
                call.args.push(self.parse_expr()?);
                if !self.accept_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.accept_kw("USING") {
            self.expect_kw("PARAMETERS")?;
            loop {
                let key = self.ident()?;
                self.expect_token(&Token::Eq)?;
                let value = match self.next()? {
                    Token::Str(s) => s,
                    Token::Int(v) => v.to_string(),
                    Token::Float(v) => v.to_string(),
                    Token::Ident(s) => s,
                    other => {
                        return Err(DbError::Parse(format!(
                            "bad parameter value '{other}' for {name}.{key}"
                        )))
                    }
                };
                call.params.insert(key.to_ascii_lowercase(), value);
                if !self.accept_token(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(call)
    }

    // ----------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr> {
        let lhs = self.parse_unary()?;
        self.parse_binary_continuation(lhs, 0)
    }

    /// Postfix predicates binding at comparison level: `IS [NOT] NULL`,
    /// `[NOT] IN (…)`, `[NOT] BETWEEN a AND b`, `[NOT] LIKE pattern`.
    /// Returns the (possibly wrapped) expression and whether anything was
    /// consumed.
    fn try_postfix(&mut self, lhs: Expr) -> Result<(Expr, bool)> {
        if self.peek_kw("IS") {
            self.pos += 1;
            let not = self.accept_kw("NOT");
            self.expect_kw("NULL")?;
            let e = if not {
                Expr::IsNotNull(Box::new(lhs))
            } else {
                Expr::IsNull(Box::new(lhs))
            };
            return Ok((e, true));
        }
        // NOT only participates here when followed by IN/BETWEEN/LIKE
        // (otherwise it is the prefix operator parsed elsewhere).
        let negated = if self.peek_kw("NOT") {
            let next_is_postfix = matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::Ident(w)) if ["IN", "BETWEEN", "LIKE"]
                    .iter()
                    .any(|k| w.eq_ignore_ascii_case(k))
            );
            if !next_is_postfix {
                return Ok((lhs, false));
            }
            self.pos += 1;
            true
        } else {
            false
        };
        if self.accept_kw("IN") {
            self.expect_token(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.accept_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            return Ok((
                Expr::InList {
                    expr: Box::new(lhs),
                    list,
                    negated,
                },
                true,
            ));
        }
        if self.accept_kw("BETWEEN") {
            // Bounds parse above AND precedence so the BETWEEN's own AND
            // isn't swallowed.
            let lo = {
                let u = self.parse_unary()?;
                self.parse_binary_continuation(u, 4)?
            };
            self.expect_kw("AND")?;
            let hi = {
                let u = self.parse_unary()?;
                self.parse_binary_continuation(u, 4)?
            };
            // Desugar: x BETWEEN a AND b ⇔ x >= a AND x <= b.
            let body = Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::Ge, lhs.clone(), lo),
                Expr::binary(BinOp::Le, lhs, hi),
            );
            let e = if negated {
                Expr::Not(Box::new(body))
            } else {
                body
            };
            return Ok((e, true));
        }
        if self.accept_kw("LIKE") {
            let pattern = self.parse_unary()?;
            return Ok((
                Expr::Like {
                    expr: Box::new(lhs),
                    pattern: Box::new(pattern),
                    negated,
                },
                true,
            ));
        }
        if negated {
            return Err(DbError::Parse("dangling NOT".into()));
        }
        Ok((lhs, false))
    }

    /// Precedence climbing from an already-parsed left-hand side.
    fn parse_binary_continuation(&mut self, mut lhs: Expr, min_prec: u8) -> Result<Expr> {
        loop {
            // Postfix predicates (IS NULL / IN / BETWEEN / LIKE) bind at
            // comparison level — tighter than AND/OR.
            if min_prec <= 3 {
                let (e, consumed) = self.try_postfix(lhs)?;
                lhs = e;
                if consumed {
                    continue;
                }
            }
            let Some((op, prec)) = self.peek_binop() else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.pos += 1;
            let mut rhs = self.parse_unary()?;
            loop {
                let (e, consumed) = self.try_postfix(rhs)?;
                rhs = e;
                if consumed {
                    continue;
                }
                let Some((_, next_prec)) = self.peek_binop() else {
                    break;
                };
                if next_prec <= prec {
                    break;
                }
                rhs = self.parse_binary_continuation(rhs, prec + 1)?;
            }
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let tok = self.peek()?;
        Some(match tok {
            Token::Ident(s) if s.eq_ignore_ascii_case("OR") => (BinOp::Or, 1),
            Token::Ident(s) if s.eq_ignore_ascii_case("AND") => (BinOp::And, 2),
            Token::Eq => (BinOp::Eq, 3),
            Token::NotEq => (BinOp::Ne, 3),
            Token::Lt => (BinOp::Lt, 3),
            Token::LtEq => (BinOp::Le, 3),
            Token::Gt => (BinOp::Gt, 3),
            Token::GtEq => (BinOp::Ge, 3),
            Token::Plus => (BinOp::Add, 4),
            Token::Minus => (BinOp::Sub, 4),
            Token::Star => (BinOp::Mul, 5),
            Token::Slash => (BinOp::Div, 5),
            Token::Percent => (BinOp::Mod, 5),
            _ => return None,
        })
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.accept_token(&Token::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.accept_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next()? {
            Token::Int(v) => Ok(Expr::lit(v)),
            Token::Float(v) => Ok(Expr::lit(v)),
            Token::Str(s) => Ok(Expr::lit(s.as_str())),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::lit(false));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if is_reserved(&name) {
                    return Err(DbError::Parse(format!(
                        "unexpected keyword '{name}' in expression"
                    )));
                }
                if self.accept_token(&Token::LParen) {
                    let call = self.parse_call_body(&name)?;
                    if !call.params.is_empty() || call.star || call.distinct {
                        return Err(DbError::Parse(format!(
                            "'{name}(…)' used as a scalar expression cannot take * or parameters"
                        )));
                    }
                    return Ok(Expr::Func {
                        name,
                        args: call.args,
                    });
                }
                Ok(Expr::Column(name))
            }
            other => Err(DbError::Parse(format!("unexpected token '{other}'"))),
        }
    }
}

#[derive(Default)]
struct Call {
    args: Vec<Expr>,
    params: BTreeMap<String, String>,
    star: bool,
    distinct: bool,
}

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|k| k.eq_ignore_ascii_case(word))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = select("SELECT a, b FROM t WHERE a > 1");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.as_deref(), Some("t"));
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn wildcard_and_alias() {
        let s = select("SELECT *, a + 1 AS next, b twice FROM t");
        assert_eq!(s.items[0], SelectItem::Wildcard);
        match &s.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("next")),
            other => panic!("{other:?}"),
        }
        match &s.items[2] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("twice")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let s = select("SELECT count(*), sum(x), avg(x) AS mean FROM t GROUP BY g");
        assert!(matches!(
            s.items[0],
            SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: None,
                ..
            }
        ));
        assert!(matches!(
            &s.items[2],
            SelectItem::Aggregate {
                func: AggFunc::Avg,
                alias: Some(a),
                ..
            } if a == "mean"
        ));
        assert_eq!(s.group_by.len(), 1);
        assert!(parse("SELECT sum(*) FROM t").is_err());
        assert!(parse("SELECT count(a, b) FROM t").is_err());
    }

    #[test]
    fn order_limit_offset() {
        let s = select("SELECT * FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 30");
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(30));
    }

    #[test]
    fn transform_invocation_matches_figure_4() {
        // The paper's Figure 4 query shape.
        let s = select(
            "SELECT ExportToDistributedR(a, b USING PARAMETERS workers='h1:9090,h2:9091', \
             psize=100000, policy='locality') OVER (PARTITION BEST) FROM mytable",
        );
        match &s.items[0] {
            SelectItem::Transform {
                name,
                args,
                params,
                partition,
            } => {
                assert_eq!(name, "ExportToDistributedR");
                assert_eq!(args.len(), 2);
                assert_eq!(params.get("workers").unwrap(), "h1:9090,h2:9091");
                assert_eq!(params.get("psize").unwrap(), "100000");
                assert_eq!(params.get("policy").unwrap(), "locality");
                assert_eq!(*partition, Partition::Best);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transform_partition_by() {
        let s = select(
            "SELECT glmPredict(a, b USING PARAMETERS model='m') OVER (PARTITION BY a) FROM t",
        );
        match &s.items[0] {
            SelectItem::Transform { partition, .. } => {
                assert_eq!(*partition, Partition::By("a".into()))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scalar_function_in_expression() {
        let s = select("SELECT sqrt(x) + 1 FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "(sqrt(x) + 1)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let s = select("SELECT a + b * c - d FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "((a + (b * c)) - d)");
            }
            other => panic!("{other:?}"),
        }
        let s = select("SELECT * FROM t WHERE a > 1 AND b < 2 OR c = 3");
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "(((a > 1) AND (b < 2)) OR (c = 3))"
        );
    }

    #[test]
    fn is_null_postfix() {
        let s = select("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "((a) IS NULL AND (b) IS NOT NULL)"
        );
    }

    #[test]
    fn create_table_variants() {
        let stmt = parse(
            "CREATE TABLE samples (id INTEGER, x FLOAT, name VARCHAR(64), ok BOOLEAN) \
             SEGMENTED BY HASH(id)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                segmentation,
            } => {
                assert_eq!(name, "samples");
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[1], ("x".to_string(), DataType::Float64));
                assert_eq!(segmentation, Some(SegSpec::Hash("id".into())));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse("CREATE TABLE t (a INT) SEGMENTED ROUND ROBIN").unwrap(),
            Statement::CreateTable {
                segmentation: Some(SegSpec::RoundRobin),
                ..
            }
        ));
        assert!(parse("CREATE TABLE t (a BLOB)").is_err());
    }

    #[test]
    fn insert_and_drop() {
        let stmt = parse("INSERT INTO t VALUES (1, 'a'), (2, NULL)").unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::Literal(Value::Null));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse("DROP TABLE t;").unwrap(),
            Statement::DropTable {
                if_exists: false,
                ..
            }
        ));
    }

    #[test]
    fn negative_numbers_and_unary() {
        let s = select("SELECT -a, -1.5, NOT (a > 0) FROM t");
        assert_eq!(s.items.len(), 3);
    }

    #[test]
    fn errors_are_informative() {
        let e = parse("SELECT FROM").unwrap_err();
        assert!(matches!(e, DbError::Parse(_)));
        let e = parse("SELECT a FROM t WHERE").unwrap_err();
        assert!(e.to_string().contains("end of input"));
        let e = parse("SELECT a FROM t nonsense extra").unwrap_err();
        assert!(e.to_string().contains("trailing") || e.to_string().contains("unexpected"));
        assert!(parse("").is_err());
    }

    #[test]
    fn in_between_like_postfix_predicates() {
        let s = select("SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4)");
        let w = s.where_clause.unwrap().to_string();
        assert!(w.contains("(a) IN (1, 2, 3)"), "{w}");
        assert!(w.contains("(b) NOT IN (4)"), "{w}");

        let s = select("SELECT * FROM t WHERE a BETWEEN 1 AND 3 AND b = 2");
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "(((a >= 1) AND (a <= 3)) AND (b = 2))"
        );
        let s = select("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 3");
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "NOT (((a >= 1) AND (a <= 3)))"
        );

        let s = select("SELECT * FROM t WHERE name LIKE 'ab%' OR name NOT LIKE '%z'");
        let w = s.where_clause.unwrap().to_string();
        assert!(w.contains("(name) LIKE 'ab%'"), "{w}");
        assert!(w.contains("(name) NOT LIKE '%z'"), "{w}");
    }

    #[test]
    fn count_distinct_parses_and_is_count_only() {
        let s = select("SELECT count(DISTINCT tag) FROM t");
        assert!(matches!(
            &s.items[0],
            SelectItem::Aggregate {
                func: AggFunc::Count,
                distinct: true,
                ..
            }
        ));
        assert!(parse("SELECT sum(DISTINCT x) FROM t").is_err());
        assert!(parse("SELECT count(DISTINCT *) FROM t").is_err());
        assert!(parse("SELECT sqrt(DISTINCT x) FROM t").is_err());
    }

    #[test]
    fn using_parameters_without_over_is_rejected() {
        assert!(parse("SELECT f(a USING PARAMETERS k='v') FROM t").is_err());
    }

    #[test]
    fn schema_qualified_from_parses_as_dotted_name() {
        let s = select("SELECT name, value FROM v_monitor.metrics WHERE value > 0");
        assert_eq!(s.from.as_deref(), Some("v_monitor.metrics"));
        // Unqualified names are untouched.
        assert_eq!(select("SELECT * FROM t").from.as_deref(), Some("t"));
    }

    #[test]
    fn profile_wraps_any_statement() {
        let stmt = parse("PROFILE SELECT count(*) FROM t WHERE x > 1").unwrap();
        let Statement::Profile(inner) = stmt else {
            panic!("expected Profile, got {stmt:?}");
        };
        assert!(matches!(*inner, Statement::Select(_)));
        let stmt = parse("PROFILE INSERT INTO t VALUES (1)").unwrap();
        assert!(matches!(stmt, Statement::Profile(_)));
        // Bare PROFILE with nothing to profile is a parse error.
        assert!(parse("PROFILE").is_err());
    }

    #[test]
    fn trace_wraps_any_statement() {
        let stmt = parse("TRACE SELECT count(*) FROM t WHERE x > 1").unwrap();
        let Statement::Trace(inner) = stmt else {
            panic!("expected Trace, got {stmt:?}");
        };
        assert!(matches!(*inner, Statement::Select(_)));
        // TRACE PROFILE parses (the executor rejects the nesting later,
        // like any inner PROFILE).
        let stmt = parse("TRACE PROFILE SELECT 1").unwrap();
        assert!(matches!(stmt, Statement::Trace(_)));
        // Bare TRACE with nothing to trace is a parse error.
        assert!(parse("TRACE").is_err());
    }
}
