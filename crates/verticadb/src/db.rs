//! The database façade: catalog + storage + DFS + models + UDx registry +
//! admission control, bound to a simulated cluster.

use crate::admission::AdmissionController;
use crate::catalog::{Catalog, TableDef};
use crate::dfs::Dfs;
use crate::error::Result;
use crate::exec;
use crate::models::ModelStore;
use crate::monitor::{Monitor, QueryRecord, SystemTableProvider};
use crate::sql;
use crate::storage::SegmentStore;
use crate::udx::{TransformFunction, UdxRegistry};
use std::sync::Arc;
use vdr_cluster::{Ledger, PhaseKind, PhaseRecorder, SimCluster, SimDuration};
use vdr_columnar::Batch;

/// Result of one SQL statement: the rows, the statement's simulated
/// duration under the cluster's hardware profile, and the query id it was
/// attributed under (filter `v_monitor` tables by it).
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub batch: Batch,
    pub sim_time: SimDuration,
    pub query_id: u64,
}

/// A running database instance spanning all cluster nodes.
pub struct VerticaDb {
    cluster: SimCluster,
    catalog: Catalog,
    storage: SegmentStore,
    dfs: Arc<Dfs>,
    models: ModelStore,
    udx: UdxRegistry,
    admission: AdmissionController,
    ledger: Arc<Ledger>,
    monitor: Monitor,
}

impl VerticaDb {
    /// Start a database on `cluster`. DFS replication follows Vertica's
    /// K-safety style default: min(cluster size, 3) copies.
    pub fn new(cluster: SimCluster) -> Arc<Self> {
        let dfs = Arc::new(Dfs::new(cluster.clone(), cluster.num_nodes().min(3)));
        let max_q = cluster.profile().costs.db_max_concurrent_queries;
        Arc::new(VerticaDb {
            catalog: Catalog::new(),
            storage: SegmentStore::new(cluster.clone()),
            models: ModelStore::new(Arc::clone(&dfs)),
            dfs,
            udx: UdxRegistry::new(),
            admission: AdmissionController::new(max_q),
            ledger: Arc::new(Ledger::new()),
            monitor: Monitor::new(),
            cluster,
        })
    }

    /// Parse and execute one SQL statement, charging a ledger phase named
    /// after the statement.
    pub fn query(&self, sql_text: &str) -> Result<QueryOutput> {
        let stmt = sql::parse(sql_text)?;
        self.execute_tracked(&stmt, Some(sql_text), &self.ledger, None)
    }

    /// Execute a pre-parsed statement.
    pub fn execute(&self, stmt: &sql::Statement) -> Result<QueryOutput> {
        self.execute_tracked(stmt, None, &self.ledger, None)
    }

    /// Parse and execute, committing the phase to `target` instead of the
    /// database ledger (sessions account statements on their own ledgers),
    /// with an optional phase-label override. The query is still recorded
    /// into the shared `v_monitor` history either way.
    pub fn query_on_ledger(
        &self,
        sql_text: &str,
        target: &Ledger,
        label: Option<String>,
    ) -> Result<QueryOutput> {
        let stmt = sql::parse(sql_text)?;
        self.execute_tracked(&stmt, Some(sql_text), target, label)
    }

    /// The tracked execution path every SQL entry point funnels through:
    /// allocates a query id, scopes execution to it, diffs metrics around
    /// it, and records the outcome in the query history. `PROFILE` is
    /// intercepted here — its inner statement runs normally (with recording
    /// forced on if verbosity is `Off`), then the result batch is replaced
    /// by the profile rows.
    fn execute_tracked(
        &self,
        stmt: &sql::Statement,
        sql_text: Option<&str>,
        target: &Ledger,
        label: Option<String>,
    ) -> Result<QueryOutput> {
        if let sql::Statement::Trace(inner) = stmt {
            // Like PROFILE, but forces span recording and returns the span
            // rows of the inner statement's trace tree.
            let saved = vdr_obs::verbosity_override();
            let forced = vdr_obs::Verbosity::current() != vdr_obs::Verbosity::Trace;
            if forced {
                vdr_obs::set_verbosity(vdr_obs::Verbosity::Trace);
            }
            let seq = vdr_obs::global().trace().current_seq();
            let run = self.run_tracked(inner, sql_text, target, label);
            if forced {
                match saved {
                    Some(v) => vdr_obs::set_verbosity(v),
                    None => vdr_obs::reset_verbosity(),
                }
            }
            let (output, _record) = run?;
            let spans: Vec<_> = vdr_obs::global()
                .trace()
                .spans_since(seq)
                .into_iter()
                .filter(|s| s.query_id == output.query_id)
                .collect();
            let batch = crate::monitor::trace_batch(&spans)?;
            return Ok(QueryOutput { batch, ..output });
        }
        if let sql::Statement::Profile(inner) = stmt {
            let saved = vdr_obs::verbosity_override();
            let forced = !vdr_obs::Verbosity::current().recording();
            if forced {
                vdr_obs::set_verbosity(vdr_obs::Verbosity::Summary);
            }
            let run = self.run_tracked(inner, sql_text, target, label);
            if forced {
                match saved {
                    Some(v) => vdr_obs::set_verbosity(v),
                    None => vdr_obs::reset_verbosity(),
                }
            }
            let (output, record) = run?;
            let batch = crate::monitor::profile_batch(&record)?;
            return Ok(QueryOutput { batch, ..output });
        }
        self.run_tracked(stmt, sql_text, target, label)
            .map(|(output, _)| output)
    }

    fn run_tracked(
        &self,
        stmt: &sql::Statement,
        sql_text: Option<&str>,
        target: &Ledger,
        label: Option<String>,
    ) -> Result<(QueryOutput, QueryRecord)> {
        let query_id = vdr_obs::next_query_id();
        let _scope = vdr_obs::QueryScope::enter(query_id);
        // Per-query metric attribution costs two registry snapshots plus a
        // diff; with recording off nothing moves between them, so skip the
        // capture entirely and keep `VDR_OBS=off` a true zero-overhead path.
        let recording = vdr_obs::Verbosity::current().recording();
        let metrics_before = recording.then(|| vdr_obs::global().metrics().snapshot());
        let started = std::time::Instant::now();
        let rec = Arc::new(PhaseRecorder::new(
            label.unwrap_or_else(|| statement_label(stmt)),
            PhaseKind::Pipelined,
            self.cluster.num_nodes(),
        ));
        rec.set_query_id(query_id);
        let result = self.execute_with(stmt, &rec);
        let report = Arc::into_inner(rec)
            .expect("no stray phase references after execution")
            .finish(self.cluster.profile());
        let wall_ns = started.elapsed().as_nanos() as u64;
        // The latency observation must land *before* the after-snapshot so
        // the statement's own delta (and the DC tick it feeds) includes it.
        if recording {
            vdr_obs::observe("query.wall_us", wall_ns as f64 / 1e3);
        }
        let after = recording.then(|| vdr_obs::global().metrics().snapshot());
        let metrics_delta = match (&after, metrics_before) {
            (Some(after), Some(before)) => after.diff(&before),
            _ => Default::default(),
        };
        let latency = after
            .as_ref()
            .and_then(|snap| snap.histogram_total("query.wall_us"));
        let sql = sql_text.map_or_else(|| report.name.clone(), str::to_string);
        match result {
            Ok(batch) => {
                let sim_time = report.duration();
                let record = QueryRecord {
                    id: query_id,
                    sql,
                    status: "complete".to_string(),
                    sim_secs: sim_time.as_secs(),
                    wall_ns,
                    rows: batch.num_rows() as u64,
                    bytes: batch.byte_size(),
                    phases: vec![report.clone()],
                    metrics_delta,
                };
                self.dc_tick(&record, "statement", &report, latency);
                target.push(report);
                let threshold = self.monitor.slow_threshold_ns();
                if wall_ns >= threshold {
                    self.monitor.record_slow(&record, threshold);
                    vdr_obs::event(
                        "query.slow",
                        format!(
                            "query_id={query_id} wall_ms={:.1} threshold_ms={:.1}",
                            wall_ns as f64 / 1e6,
                            threshold as f64 / 1e6
                        ),
                    );
                }
                self.monitor.history().record(record.clone());
                Ok((
                    QueryOutput {
                        batch,
                        sim_time,
                        query_id,
                    },
                    record,
                ))
            }
            Err(e) => {
                vdr_obs::event("query.error", format!("query_id={query_id} error={e}"));
                let record = QueryRecord {
                    id: query_id,
                    sql,
                    status: format!("error: {e}"),
                    sim_secs: 0.0,
                    wall_ns,
                    rows: 0,
                    bytes: 0,
                    phases: Vec::new(),
                    metrics_delta,
                };
                self.dc_tick(&record, "statement", &report, latency);
                self.monitor.history().record(record);
                Err(e)
            }
        }
    }

    /// Advance the data collector one deterministic tick at a statement
    /// boundary: the statement's metric delta, its per-node ledger readings,
    /// and the rolling latency histogram become one ring sample per node
    /// plus one query rollup. (`vdr-transfer` ticks the same collector on
    /// VFT and train-pool completions.)
    fn dc_tick(
        &self,
        record: &QueryRecord,
        trigger: &'static str,
        report: &vdr_cluster::PhaseReport,
        latency: Option<vdr_obs::HistogramSnapshot>,
    ) {
        let dc = vdr_obs::global().dc();
        if !dc.sampling() {
            return;
        }
        let cache = self.storage.block_cache();
        let usage = report
            .nodes
            .iter()
            .map(|n| vdr_obs::TickUsage {
                node: n.node,
                sim_secs: n.duration_secs,
                cpu_core_ns: n.usage.cpu_core_ns,
                disk_read_bytes: n.usage.disk_read_bytes + n.usage.disk_cached_read_bytes,
                disk_write_bytes: n.usage.disk_write_bytes,
                net_in_bytes: n.usage.net_in_bytes,
                net_out_bytes: n.usage.net_out_bytes,
                cache_bytes: cache.bytes_on(vdr_cluster::NodeId(n.node)),
            })
            .collect();
        dc.tick(vdr_obs::TickContext {
            query_id: record.id,
            trigger,
            label: record.sql.clone(),
            status: record.status.clone(),
            rows: record.rows,
            bytes: record.bytes,
            sim_secs: record.sim_secs,
            wall_ns: record.wall_ns,
            delta: record.metrics_delta.clone(),
            latency,
            usage,
        });
    }

    /// Execute a statement charging an externally owned phase recorder.
    /// Used by the transfer layer, which accounts a whole transfer (query +
    /// streams + client-side conversion) as one ledger phase of its own.
    pub fn execute_with(&self, stmt: &sql::Statement, rec: &Arc<PhaseRecorder>) -> Result<Batch> {
        let _slot = self.admission.admit();
        exec::execute(self, stmt, rec)
    }

    /// Parse and execute with an external recorder (see [`Self::execute_with`]).
    pub fn query_with(&self, sql_text: &str, rec: &Arc<PhaseRecorder>) -> Result<Batch> {
        let stmt = sql::parse(sql_text)?;
        self.execute_with(&stmt, rec)
    }

    /// Bulk-load batches into an existing table (the ETL path customers use
    /// before analytics — Vertica's COPY). Returns rows loaded.
    pub fn copy(&self, table: &str, batches: impl IntoIterator<Item = Batch>) -> Result<u64> {
        let mut copy_span = vdr_obs::span("db.copy");
        copy_span.record("table", table);
        let def = self.catalog.get(table)?;
        let rec = PhaseRecorder::new(
            format!("COPY {table}"),
            PhaseKind::Pipelined,
            self.cluster.num_nodes(),
        );
        let rows = self.storage.load(&def, batches, &rec)?;
        let report = rec.finish(self.cluster.profile());
        copy_span.record("rows", rows);
        copy_span.set_sim_time(report.duration());
        self.ledger.push(report);
        Ok(rows)
    }

    /// Create a table from a definition (programmatic alternative to DDL,
    /// needed for the skewed segmentation experiments which have no SQL
    /// spelling).
    pub fn create_table(&self, def: TableDef) -> Result<()> {
        self.catalog.create_table(def)
    }

    /// Register a user-defined transform function.
    pub fn register_transform(&self, f: Arc<dyn TransformFunction>) {
        self.udx.register(f);
    }

    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn storage(&self) -> &SegmentStore {
        &self.storage
    }

    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    pub fn dfs_arc(&self) -> Arc<Dfs> {
        Arc::clone(&self.dfs)
    }

    pub fn models(&self) -> &ModelStore {
        &self.models
    }

    pub fn udx(&self) -> &UdxRegistry {
        &self.udx
    }

    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The database's cost ledger (all executed statements' phases).
    pub fn ledger(&self) -> &Arc<Ledger> {
        &self.ledger
    }

    /// The `v_monitor` registry and query history.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Expose extra state as a `v_monitor` table.
    pub fn register_system_table(&self, provider: Arc<dyn SystemTableProvider>) {
        self.monitor.register(provider);
    }
}

pub(crate) fn statement_label(stmt: &sql::Statement) -> String {
    match stmt {
        sql::Statement::Select(s) => match s.transform_item() {
            Some(sql::SelectItem::Transform { name, .. }) => format!("SELECT {name}(…) OVER"),
            _ => "SELECT".to_string(),
        },
        sql::Statement::CreateTable { name, .. } => format!("CREATE TABLE {name}"),
        sql::Statement::CreateTableAs { name, .. } => format!("CREATE TABLE {name} AS SELECT"),
        sql::Statement::Insert { table, .. } => format!("INSERT {table}"),
        sql::Statement::DropTable { name, .. } => format!("DROP TABLE {name}"),
        sql::Statement::Profile(inner) => format!("PROFILE {}", statement_label(inner)),
        sql::Statement::Trace(inner) => format!("TRACE {}", statement_label(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdr_columnar::{Column, DataType, Schema, Value};

    #[test]
    fn copy_and_query_roundtrip() {
        let cluster = SimCluster::for_tests(4);
        let db = VerticaDb::new(cluster);
        db.query("CREATE TABLE m (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)")
            .unwrap();
        let schema = Schema::of(&[("id", DataType::Int64), ("v", DataType::Float64)]);
        let batch = Batch::new(
            schema,
            vec![
                Column::from_i64((0..1000).collect()),
                Column::from_f64((0..1000).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        assert_eq!(db.copy("m", vec![batch]).unwrap(), 1000);
        let out = db.query("SELECT count(*), sum(v) FROM m").unwrap();
        assert_eq!(out.batch.row(0)[0], Value::Int64(1000));
        assert_eq!(out.batch.row(0)[1], Value::Float64(999.0 * 500.0));
        assert!(out.sim_time.as_secs() > 0.0, "queries take simulated time");
        // Ledger accumulated phases for the DDL, the COPY, and the SELECTs.
        assert!(db.ledger().reports().len() >= 3);
    }

    #[test]
    fn r_models_table_is_queryable() {
        let cluster = SimCluster::for_tests(2);
        let db = VerticaDb::new(cluster.clone());
        let rec = PhaseRecorder::new("save", PhaseKind::Sequential, 2);
        db.models()
            .save(
                vdr_cluster::NodeId(0),
                "model1",
                "X",
                "kmeans",
                "clustering",
                bytes::Bytes::from_static(b"m"),
                &rec,
            )
            .unwrap();
        let out = db.query("SELECT * FROM R_Models").unwrap().batch;
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Varchar("model1".into()));
        // And it filters like any table.
        let out = db
            .query("SELECT model FROM R_Models WHERE type = 'kmeans'")
            .unwrap()
            .batch;
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn admission_counts_queries() {
        let cluster = SimCluster::for_tests(1);
        let db = VerticaDb::new(cluster);
        db.query("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..5 {
            db.query(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(db.admission().admitted(), 7);
    }
}
