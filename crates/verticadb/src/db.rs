//! The database façade: catalog + storage + DFS + models + UDx registry +
//! admission control, bound to a simulated cluster.

use crate::admission::AdmissionController;
use crate::catalog::{Catalog, TableDef};
use crate::dfs::Dfs;
use crate::error::Result;
use crate::exec;
use crate::models::ModelStore;
use crate::sql;
use crate::storage::SegmentStore;
use crate::udx::{TransformFunction, UdxRegistry};
use std::sync::Arc;
use vdr_cluster::{Ledger, PhaseKind, PhaseRecorder, SimCluster, SimDuration};
use vdr_columnar::Batch;

/// Result of one SQL statement: the rows plus the statement's simulated
/// duration under the cluster's hardware profile.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub batch: Batch,
    pub sim_time: SimDuration,
}

/// A running database instance spanning all cluster nodes.
pub struct VerticaDb {
    cluster: SimCluster,
    catalog: Catalog,
    storage: SegmentStore,
    dfs: Arc<Dfs>,
    models: ModelStore,
    udx: UdxRegistry,
    admission: AdmissionController,
    ledger: Arc<Ledger>,
}

impl VerticaDb {
    /// Start a database on `cluster`. DFS replication follows Vertica's
    /// K-safety style default: min(cluster size, 3) copies.
    pub fn new(cluster: SimCluster) -> Arc<Self> {
        let dfs = Arc::new(Dfs::new(cluster.clone(), cluster.num_nodes().min(3)));
        let max_q = cluster.profile().costs.db_max_concurrent_queries;
        Arc::new(VerticaDb {
            catalog: Catalog::new(),
            storage: SegmentStore::new(cluster.clone()),
            models: ModelStore::new(Arc::clone(&dfs)),
            dfs,
            udx: UdxRegistry::new(),
            admission: AdmissionController::new(max_q),
            ledger: Arc::new(Ledger::new()),
            cluster,
        })
    }

    /// Parse and execute one SQL statement, charging a ledger phase named
    /// after the statement.
    pub fn query(&self, sql_text: &str) -> Result<QueryOutput> {
        let stmt = sql::parse(sql_text)?;
        self.execute(&stmt)
    }

    /// Execute a pre-parsed statement.
    pub fn execute(&self, stmt: &sql::Statement) -> Result<QueryOutput> {
        let rec = Arc::new(PhaseRecorder::new(
            statement_label(stmt),
            PhaseKind::Pipelined,
            self.cluster.num_nodes(),
        ));
        let batch = self.execute_with(stmt, &rec)?;
        let report = Arc::into_inner(rec)
            .expect("no stray phase references after execution")
            .finish(self.cluster.profile());
        let sim_time = report.duration();
        self.ledger.push(report);
        Ok(QueryOutput { batch, sim_time })
    }

    /// Execute a statement charging an externally owned phase recorder.
    /// Used by the transfer layer, which accounts a whole transfer (query +
    /// streams + client-side conversion) as one ledger phase of its own.
    pub fn execute_with(&self, stmt: &sql::Statement, rec: &Arc<PhaseRecorder>) -> Result<Batch> {
        let _slot = self.admission.admit();
        exec::execute(self, stmt, rec)
    }

    /// Parse and execute with an external recorder (see [`Self::execute_with`]).
    pub fn query_with(&self, sql_text: &str, rec: &Arc<PhaseRecorder>) -> Result<Batch> {
        let stmt = sql::parse(sql_text)?;
        self.execute_with(&stmt, rec)
    }

    /// Bulk-load batches into an existing table (the ETL path customers use
    /// before analytics — Vertica's COPY). Returns rows loaded.
    pub fn copy(&self, table: &str, batches: impl IntoIterator<Item = Batch>) -> Result<u64> {
        let mut copy_span = vdr_obs::span("db.copy");
        copy_span.record("table", table);
        let def = self.catalog.get(table)?;
        let rec = PhaseRecorder::new(
            format!("COPY {table}"),
            PhaseKind::Pipelined,
            self.cluster.num_nodes(),
        );
        let rows = self.storage.load(&def, batches, &rec)?;
        let report = rec.finish(self.cluster.profile());
        copy_span.record("rows", rows);
        copy_span.set_sim_time(report.duration());
        self.ledger.push(report);
        Ok(rows)
    }

    /// Create a table from a definition (programmatic alternative to DDL,
    /// needed for the skewed segmentation experiments which have no SQL
    /// spelling).
    pub fn create_table(&self, def: TableDef) -> Result<()> {
        self.catalog.create_table(def)
    }

    /// Register a user-defined transform function.
    pub fn register_transform(&self, f: Arc<dyn TransformFunction>) {
        self.udx.register(f);
    }

    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn storage(&self) -> &SegmentStore {
        &self.storage
    }

    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    pub fn dfs_arc(&self) -> Arc<Dfs> {
        Arc::clone(&self.dfs)
    }

    pub fn models(&self) -> &ModelStore {
        &self.models
    }

    pub fn udx(&self) -> &UdxRegistry {
        &self.udx
    }

    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The database's cost ledger (all executed statements' phases).
    pub fn ledger(&self) -> &Arc<Ledger> {
        &self.ledger
    }
}

pub(crate) fn statement_label(stmt: &sql::Statement) -> String {
    match stmt {
        sql::Statement::Select(s) => match s.transform_item() {
            Some(sql::SelectItem::Transform { name, .. }) => format!("SELECT {name}(…) OVER"),
            _ => "SELECT".to_string(),
        },
        sql::Statement::CreateTable { name, .. } => format!("CREATE TABLE {name}"),
        sql::Statement::CreateTableAs { name, .. } => format!("CREATE TABLE {name} AS SELECT"),
        sql::Statement::Insert { table, .. } => format!("INSERT {table}"),
        sql::Statement::DropTable { name, .. } => format!("DROP TABLE {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdr_columnar::{Column, DataType, Schema, Value};

    #[test]
    fn copy_and_query_roundtrip() {
        let cluster = SimCluster::for_tests(4);
        let db = VerticaDb::new(cluster);
        db.query("CREATE TABLE m (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)")
            .unwrap();
        let schema = Schema::of(&[("id", DataType::Int64), ("v", DataType::Float64)]);
        let batch = Batch::new(
            schema,
            vec![
                Column::from_i64((0..1000).collect()),
                Column::from_f64((0..1000).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        assert_eq!(db.copy("m", vec![batch]).unwrap(), 1000);
        let out = db.query("SELECT count(*), sum(v) FROM m").unwrap();
        assert_eq!(out.batch.row(0)[0], Value::Int64(1000));
        assert_eq!(out.batch.row(0)[1], Value::Float64(999.0 * 500.0));
        assert!(out.sim_time.as_secs() > 0.0, "queries take simulated time");
        // Ledger accumulated phases for the DDL, the COPY, and the SELECTs.
        assert!(db.ledger().reports().len() >= 3);
    }

    #[test]
    fn r_models_table_is_queryable() {
        let cluster = SimCluster::for_tests(2);
        let db = VerticaDb::new(cluster.clone());
        let rec = PhaseRecorder::new("save", PhaseKind::Sequential, 2);
        db.models()
            .save(
                vdr_cluster::NodeId(0),
                "model1",
                "X",
                "kmeans",
                "clustering",
                bytes::Bytes::from_static(b"m"),
                &rec,
            )
            .unwrap();
        let out = db.query("SELECT * FROM R_Models").unwrap().batch;
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Varchar("model1".into()));
        // And it filters like any table.
        let out = db
            .query("SELECT model FROM R_Models WHERE type = 'kmeans'")
            .unwrap()
            .batch;
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn admission_counts_queries() {
        let cluster = SimCluster::for_tests(1);
        let db = VerticaDb::new(cluster);
        db.query("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..5 {
            db.query(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(db.admission().admitted(), 7);
    }
}
