//! The catalog: table definitions, replicated logically on every node (we
//! keep one shared copy — the simulation runs in one process).

use crate::error::{DbError, Result};
use crate::segmentation::Segmentation;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use vdr_columnar::Schema;

/// A table's definition.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: String,
    pub schema: Schema,
    pub segmentation: Segmentation,
}

/// Thread-safe name → definition map.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, TableDef>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table. Names are case-insensitive (stored lowercased).
    pub fn create_table(&self, def: TableDef) -> Result<()> {
        let key = def.name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(DbError::Catalog(format!(
                "table '{}' already exists",
                def.name
            )));
        }
        tables.insert(key, def);
        Ok(())
    }

    pub fn drop_table(&self, name: &str) -> Result<TableDef> {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::Catalog(format!("table '{name}' does not exist")))
    }

    pub fn get(&self, name: &str) -> Result<TableDef> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DbError::Catalog(format!("table '{name}' does not exist")))
    }

    pub fn exists(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdr_columnar::DataType;

    fn def(name: &str) -> TableDef {
        TableDef {
            name: name.into(),
            schema: Schema::of(&[("id", DataType::Int64)]),
            segmentation: Segmentation::RoundRobin,
        }
    }

    #[test]
    fn create_get_drop() {
        let c = Catalog::new();
        c.create_table(def("T1")).unwrap();
        assert!(c.exists("t1"));
        assert!(c.exists("T1"));
        assert_eq!(c.get("t1").unwrap().name, "T1");
        assert!(c.create_table(def("t1")).is_err(), "duplicate rejected");
        c.drop_table("T1").unwrap();
        assert!(!c.exists("t1"));
        assert!(c.drop_table("t1").is_err());
        assert!(c.get("t1").is_err());
    }

    #[test]
    fn names_listing_sorted() {
        let c = Catalog::new();
        c.create_table(def("zeta")).unwrap();
        c.create_table(def("alpha")).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }
}
