//! Vertica's internal distributed file system (DFS).
//!
//! "Since models can be large (sometimes gigabytes), we don't store them as
//! part of a regular table. Instead, models are stored as binary blobs in
//! Vertica's distributed file system (DFS). … The DFS can replicate files
//! across nodes to ensure that they are available at all nodes. … Models
//! stored in the DFS provide the same fault-tolerance guarantees as Vertica
//! tables." (Section 5)

use crate::error::{DbError, Result};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashSet};
use vdr_cluster::{NodeId, PhaseRecorder, SimCluster};

#[derive(Debug, Clone)]
struct FileMeta {
    replicas: Vec<NodeId>,
    size: u64,
    /// crc32 of the blob contents, fixed at write time. Doubles as the
    /// blob's version tag: re-deploying a model changes the checksum, which
    /// is what invalidates node-local deserialized-model caches.
    checksum: u32,
}

/// A replicated blob store across the database nodes.
pub struct Dfs {
    cluster: SimCluster,
    replication: usize,
    files: RwLock<BTreeMap<String, FileMeta>>,
    down: RwLock<HashSet<NodeId>>,
}

impl Dfs {
    /// `replication` is clamped to the cluster size.
    pub fn new(cluster: SimCluster, replication: usize) -> Self {
        let replication = replication.clamp(1, cluster.num_nodes());
        Dfs {
            cluster,
            replication,
            files: RwLock::new(BTreeMap::new()),
            down: RwLock::new(HashSet::new()),
        }
    }

    pub fn replication(&self) -> usize {
        self.replication
    }

    fn disk_path(name: &str) -> String {
        format!("dfs/{name}")
    }

    /// Replica placement: deterministic ring walk starting at the blob
    /// name's hash, skipping nodes that are down.
    fn placement(&self, name: &str) -> Result<Vec<NodeId>> {
        let n = self.cluster.num_nodes();
        let down = self.down.read();
        let start =
            (crate::segmentation::hash_value(&vdr_columnar::Value::Varchar(name.to_string()))
                % n as u64) as usize;
        let mut replicas = Vec::with_capacity(self.replication);
        for i in 0..n {
            let node = NodeId((start + i) % n);
            if !down.contains(&node) {
                replicas.push(node);
                if replicas.len() == self.replication {
                    break;
                }
            }
        }
        if replicas.is_empty() {
            return Err(DbError::Dfs("no live nodes to place replicas on".into()));
        }
        Ok(replicas)
    }

    /// Write a blob from `src` node, replicating it. Charges the disk writes
    /// on every replica and the network hops from `src` to remote replicas.
    pub fn write(
        &self,
        src: NodeId,
        name: &str,
        data: bytes::Bytes,
        rec: &PhaseRecorder,
    ) -> Result<()> {
        let replicas = self.placement(name)?;
        let size = data.len() as u64;
        let checksum = vdr_columnar::checksum::crc32(&data);
        vdr_obs::counter_on("dfs.blob.stored", src.0, 1);
        vdr_obs::counter_on("dfs.blob.bytes_written", src.0, size);
        for &node in &replicas {
            if node != src {
                vdr_obs::counter_on("dfs.blob.replicated", node.0, 1);
            }
            rec.net(src, node, size);
            rec.disk_write(node, size);
            self.cluster
                .node(node)
                .disk()
                .write(Self::disk_path(name), data.clone());
        }
        self.files.write().insert(
            name.to_string(),
            FileMeta {
                replicas,
                size,
                checksum,
            },
        );
        Ok(())
    }

    /// Read a blob from `reader`'s point of view: a local replica if one
    /// exists, else the nearest live replica over the network. Fails only if
    /// every replica is down.
    pub fn read(&self, reader: NodeId, name: &str, rec: &PhaseRecorder) -> Result<bytes::Bytes> {
        let meta = self
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::Dfs(format!("blob '{name}' does not exist")))?;
        let down = self.down.read();
        let source = if meta.replicas.contains(&reader) && !down.contains(&reader) {
            reader
        } else {
            *meta
                .replicas
                .iter()
                .find(|r| !down.contains(r))
                .ok_or_else(|| DbError::Dfs(format!("all replicas of '{name}' are down")))?
        };
        drop(down);
        let data = self
            .cluster
            .node(source)
            .disk()
            .read(&Self::disk_path(name))?;
        rec.disk_read(source, meta.size);
        rec.net(source, reader, meta.size);
        vdr_obs::counter_on("dfs.blob.read", reader.0, 1);
        vdr_obs::counter_on("dfs.blob.bytes_read", reader.0, meta.size);
        if source != reader {
            vdr_obs::counter_on("dfs.blob.remote_read", reader.0, 1);
        }
        Ok(data)
    }

    /// Delete a blob from all replicas.
    pub fn delete(&self, name: &str) -> Result<()> {
        let meta = self
            .files
            .write()
            .remove(name)
            .ok_or_else(|| DbError::Dfs(format!("blob '{name}' does not exist")))?;
        for node in meta.replicas {
            self.cluster
                .node(node)
                .disk()
                .delete(&Self::disk_path(name));
        }
        Ok(())
    }

    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    pub fn size_of(&self, name: &str) -> Option<u64> {
        self.files.read().get(name).map(|m| m.size)
    }

    /// The blob's content checksum (its version tag), without reading it.
    /// Model caches compare this against their cached copy to detect
    /// re-deploys.
    pub fn checksum_of(&self, name: &str) -> Option<u32> {
        self.files.read().get(name).map(|m| m.checksum)
    }

    /// Whether at least one replica of the blob is on a live node. Caches
    /// must not serve a blob whose every replica is down: the DFS is the
    /// durability story, and a cache outliving it would mask the loss.
    pub fn is_readable(&self, name: &str) -> bool {
        let files = self.files.read();
        let Some(meta) = files.get(name) else {
            return false;
        };
        let down = self.down.read();
        meta.replicas.iter().any(|r| !down.contains(r))
    }

    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Where a blob's replicas live (for tests and DESCRIBE output).
    pub fn replicas_of(&self, name: &str) -> Vec<NodeId> {
        self.files
            .read()
            .get(name)
            .map(|m| m.replicas.clone())
            .unwrap_or_default()
    }

    /// Mark a node as failed: reads fail over to surviving replicas.
    pub fn set_node_down(&self, node: NodeId) {
        self.down.write().insert(node);
    }

    /// Bring a node back.
    pub fn set_node_up(&self, node: NodeId) {
        self.down.write().remove(&node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use vdr_cluster::PhaseKind;

    fn setup(n: usize, replication: usize) -> (SimCluster, Dfs, PhaseRecorder) {
        let cluster = SimCluster::for_tests(n);
        let dfs = Dfs::new(cluster.clone(), replication);
        let rec = PhaseRecorder::new("t", PhaseKind::Sequential, n);
        (cluster, dfs, rec)
    }

    #[test]
    fn write_read_roundtrip() {
        let (_, dfs, rec) = setup(4, 3);
        dfs.write(NodeId(0), "models/m1", Bytes::from_static(b"blob"), &rec)
            .unwrap();
        assert!(dfs.exists("models/m1"));
        assert_eq!(dfs.size_of("models/m1"), Some(4));
        assert_eq!(dfs.replicas_of("models/m1").len(), 3);
        for reader in 0..4 {
            let data = dfs.read(NodeId(reader), "models/m1", &rec).unwrap();
            assert_eq!(data, Bytes::from_static(b"blob"));
        }
    }

    #[test]
    fn replication_clamped_to_cluster() {
        let (_, dfs, rec) = setup(2, 5);
        assert_eq!(dfs.replication(), 2);
        dfs.write(NodeId(0), "f", Bytes::from_static(b"x"), &rec)
            .unwrap();
        assert_eq!(dfs.replicas_of("f").len(), 2);
    }

    #[test]
    fn read_survives_replica_failure() {
        let (_, dfs, rec) = setup(4, 2);
        dfs.write(NodeId(0), "m", Bytes::from_static(b"v"), &rec)
            .unwrap();
        let replicas = dfs.replicas_of("m");
        dfs.set_node_down(replicas[0]);
        let data = dfs.read(NodeId(0), "m", &rec).unwrap();
        assert_eq!(data, Bytes::from_static(b"v"));
        // Both replicas down → error.
        dfs.set_node_down(replicas[1]);
        let err = dfs.read(NodeId(0), "m", &rec).unwrap_err();
        assert!(err.to_string().contains("down"));
        // Recovery.
        dfs.set_node_up(replicas[0]);
        assert!(dfs.read(NodeId(0), "m", &rec).is_ok());
    }

    #[test]
    fn delete_removes_all_replicas() {
        let (cluster, dfs, rec) = setup(3, 3);
        dfs.write(NodeId(1), "gone", Bytes::from(vec![7u8; 100]), &rec)
            .unwrap();
        dfs.delete("gone").unwrap();
        assert!(!dfs.exists("gone"));
        for node in cluster.node_ids() {
            assert!(!cluster.node(node).disk().exists("dfs/gone"));
        }
        assert!(dfs.delete("gone").is_err());
        assert!(dfs.read(NodeId(0), "gone", &rec).is_err());
    }

    #[test]
    fn local_replica_read_costs_no_network() {
        let (cluster, dfs, _) = setup(3, 3);
        let w = PhaseRecorder::new("w", PhaseKind::Sequential, 3);
        dfs.write(NodeId(0), "m", Bytes::from(vec![0u8; 1_000_000]), &w)
            .unwrap();
        // With replication = cluster size, every node has a local copy.
        let r = PhaseRecorder::new("r", PhaseKind::Sequential, 3);
        dfs.read(NodeId(2), "m", &r).unwrap();
        let report = r.finish(cluster.profile());
        assert_eq!(
            report.total_bytes_moved, 0,
            "local read must not touch the NIC"
        );
        assert!(report.total_disk_read > 0);
    }

    #[test]
    fn placement_skips_down_nodes_at_write() {
        let (_, dfs, rec) = setup(3, 2);
        dfs.set_node_down(NodeId(0));
        dfs.set_node_down(NodeId(1));
        dfs.write(NodeId(2), "m", Bytes::from_static(b"x"), &rec)
            .unwrap();
        assert_eq!(dfs.replicas_of("m"), vec![NodeId(2)]);
        dfs.set_node_down(NodeId(2));
        assert!(dfs
            .write(NodeId(2), "m2", Bytes::from_static(b"x"), &rec)
            .is_err());
    }

    #[test]
    fn checksum_tracks_blob_contents() {
        let (_, dfs, rec) = setup(3, 3);
        assert_eq!(dfs.checksum_of("m"), None);
        dfs.write(NodeId(0), "m", Bytes::from_static(b"v1"), &rec)
            .unwrap();
        let first = dfs.checksum_of("m").unwrap();
        // Same bytes → same checksum; different bytes → new version tag.
        dfs.write(NodeId(1), "m", Bytes::from_static(b"v1"), &rec)
            .unwrap();
        assert_eq!(dfs.checksum_of("m"), Some(first));
        dfs.write(NodeId(0), "m", Bytes::from_static(b"v2"), &rec)
            .unwrap();
        assert_ne!(dfs.checksum_of("m"), Some(first));
    }

    #[test]
    fn listing_sorted() {
        let (_, dfs, rec) = setup(2, 1);
        dfs.write(NodeId(0), "b", Bytes::new(), &rec).unwrap();
        dfs.write(NodeId(0), "a", Bytes::new(), &rec).unwrap();
        assert_eq!(dfs.list(), vec!["a", "b"]);
    }
}
