//! The distributed query executor.
//!
//! Regular `SELECT`s run MPP-style: every node scans, filters, and projects
//! its own segment (and computes partial aggregates); the small per-node
//! results are gathered to the initiator node for the final merge, sort, and
//! limit. Transform (`OVER (PARTITION …)`) selects spawn UDx instances per
//! node, the paper's extension mechanism.
//!
//! # Compressed execution
//!
//! When a query's shape allows it ([`encoded_execution_eligible`]), the scan
//! returns [`EncodedBatch`]es whose Rle/Dictionary columns are still in
//! run/code form. Predicates then evaluate per *run* or per *distinct
//! dictionary code* ([`vdr_columnar::kernels::cmp_scalar_rle`] /
//! [`cmp_scalar_dict`]), a single-column dictionary GROUP BY aggregates into
//! a dense per-code table without hashing decoded strings, and everything
//! else is **late-materialized**: non-predicate columns decode only the rows
//! that survived the filter bitmap. The whole path is an executor-internal
//! optimization — results are bit-for-bit those of the decoded path.

use crate::db::VerticaDb;
use crate::error::{DbError, Result};
use crate::expr::{cmp_op, compare_values, literal_num, BinOp, Expr};
use crate::segmentation::hash_value;
use crate::sql::{AggFunc, Partition, SelectItem, SelectStmt, Statement};
use crate::udx::UdxContext;
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vdr_cluster::{NodeId, PhaseRecorder};
use vdr_columnar::kernels::{self, CmpOp};
use vdr_columnar::{
    Batch, Bitmap, Column, ColumnBuilder, DataType, EncodedBatch, Field, ScanColumn, Schema, Value,
};

/// The node that runs final merges — where the client is connected.
const INITIATOR: NodeId = NodeId(0);

/// Process-wide compressed-execution toggle (on by default). Off forces
/// every scan down the decoded path — used by equivalence tests and as an
/// escape hatch.
static COMPRESSED_EXECUTION: AtomicBool = AtomicBool::new(true);

/// Enable or disable compressed execution for subsequent queries.
pub fn set_compressed_execution(on: bool) {
    COMPRESSED_EXECUTION.store(on, Ordering::Relaxed);
}

/// Whether compressed execution is currently enabled.
pub fn compressed_execution() -> bool {
    COMPRESSED_EXECUTION.load(Ordering::Relaxed)
}

/// Execute any statement against the database, charging `rec`.
pub fn execute(db: &VerticaDb, stmt: &Statement, rec: &Arc<PhaseRecorder>) -> Result<Batch> {
    let mut stmt_span = vdr_obs::span("exec.statement");
    stmt_span.record("stmt", crate::db::statement_label(stmt));
    match stmt {
        Statement::Select(select) => execute_select(db, select, rec),
        Statement::CreateTable {
            name,
            columns,
            segmentation,
        } => {
            let schema = Schema::new(
                columns
                    .iter()
                    .map(|(n, t)| Field::new(n.clone(), *t))
                    .collect(),
            );
            let seg = match segmentation {
                Some(crate::sql::SegSpec::Hash(col)) => {
                    schema.index_of(col).map_err(|_| {
                        DbError::Plan(format!("segmentation column '{col}' not in table"))
                    })?;
                    crate::segmentation::Segmentation::Hash {
                        column: col.clone(),
                    }
                }
                Some(crate::sql::SegSpec::RoundRobin) | None => {
                    crate::segmentation::Segmentation::RoundRobin
                }
            };
            db.catalog().create_table(crate::catalog::TableDef {
                name: name.clone(),
                schema,
                segmentation: seg,
            })?;
            status_batch(&format!("CREATE TABLE {name}"))
        }
        Statement::CreateTableAs { name, query } => {
            let result = execute_select(db, query, rec)?;
            db.catalog().create_table(crate::catalog::TableDef {
                name: name.clone(),
                schema: result.schema().clone(),
                segmentation: crate::segmentation::Segmentation::RoundRobin,
            })?;
            let n = result.num_rows();
            let def = db.catalog().get(name)?;
            db.storage().load(&def, vec![result], rec)?;
            status_batch(&format!("CREATE TABLE {name} AS SELECT ({n} rows)"))
        }
        Statement::Insert { table, rows } => {
            let def = db.catalog().get(table)?;
            let one_row = Batch::from_rows(
                Schema::of(&[("dummy", DataType::Int64)]),
                &[vec![Value::Int64(0)]],
            )?;
            let mut value_rows = Vec::with_capacity(rows.len());
            for row in rows {
                if row.len() != def.schema.len() {
                    return Err(DbError::Plan(format!(
                        "INSERT has {} values, table {} has {} columns",
                        row.len(),
                        def.name,
                        def.schema.len()
                    )));
                }
                let mut values = Vec::with_capacity(row.len());
                for e in row {
                    // Literal expressions evaluated against a 1-row dummy.
                    values.push(e.eval(&one_row)?.get(0));
                }
                value_rows.push(values);
            }
            let batch = Batch::from_rows(def.schema.clone(), &value_rows)?;
            let n = batch.num_rows();
            db.storage().load(&def, vec![batch], rec)?;
            status_batch(&format!("INSERT {n}"))
        }
        Statement::DropTable { name, if_exists } => {
            match db.catalog().drop_table(name) {
                Ok(_) => {}
                Err(_) if *if_exists => return status_batch("DROP TABLE (skipped)"),
                Err(e) => return Err(e),
            }
            db.storage().drop_table(name);
            status_batch(&format!("DROP TABLE {name}"))
        }
        // The tracked path (`VerticaDb::execute_tracked`) unwraps one
        // PROFILE layer before dispatching here, so reaching this arm means
        // PROFILE PROFILE … or a caller bypassing the tracked entry points.
        Statement::Profile(_) => Err(DbError::Plan(
            "PROFILE must be the outermost statement".into(),
        )),
        Statement::Trace(_) => Err(DbError::Plan(
            "TRACE must be the outermost statement".into(),
        )),
    }
}

fn status_batch(msg: &str) -> Result<Batch> {
    Ok(Batch::new(
        Schema::of(&[("status", DataType::Varchar)]),
        vec![Column::from_strings(vec![msg])],
    )?)
}

// ------------------------------------------------------------------ SELECT

fn execute_select(db: &VerticaDb, stmt: &SelectStmt, rec: &Arc<PhaseRecorder>) -> Result<Batch> {
    if let Some(SelectItem::Transform {
        name,
        args,
        params,
        partition,
    }) = stmt.transform_item()
    {
        if stmt.items.len() != 1 {
            return Err(DbError::Plan(
                "a transform function must be the only select item".into(),
            ));
        }
        return run_transform(db, stmt, name, args, params, partition, rec);
    }

    let mut select_span = vdr_obs::span("exec.select");
    let select_span_id = select_span.id();

    // FROM-less: SELECT 1+1.
    let Some(table) = &stmt.from else {
        let one = Batch::from_rows(
            Schema::of(&[("dummy", DataType::Int64)]),
            &[vec![Value::Int64(0)]],
        )?;
        return project_batch(stmt, &one);
    };

    // Per-node pipelines.
    let per_node: Vec<Result<NodeResult>> = if let Some(sys) =
        crate::monitor::v_monitor_table(table)
    {
        // System tables materialize cluster-wide: every node contributes its
        // rows (framed and streamed to the initiator, charged to `rec`),
        // the union gains a `node_name` column, then the ordinary
        // WHERE/projection/ORDER BY machinery runs over it like any
        // gathered result.
        select_span.record("table", table);
        let batch = db.monitor().materialize_cluster(sys, db, rec)?;
        let filtered = apply_where(stmt, &batch)?;
        vec![Ok(node_result(stmt, &filtered)?)]
    } else if table.eq_ignore_ascii_case("r_models") {
        // The metadata table lives on the initiator.
        let models = db.models().as_batch();
        let filtered = apply_where(stmt, &models)?;
        vec![Ok(node_result(stmt, &filtered)?)]
    } else {
        let def = db.catalog().get(table)?;
        let _ = def; // existence check; schema validated during evaluation
        select_span.record("table", table);
        // Planner: push the referenced-column set down to the scan so
        // unused column payloads are never decoded.
        let wanted = referenced_columns(stmt);
        // Planner rule: run on encoded data when the statement shape allows
        // it (see `encoded_execution_eligible`).
        let use_encoded = encoded_execution_eligible(stmt);
        // Scatter spawns one OS thread per node: the query scope is
        // thread-local, so re-enter it in each worker (as span parents are
        // passed explicitly).
        let query_id = vdr_obs::current_query_id();
        db.cluster().scatter(|node| -> Result<NodeResult> {
            let _q = vdr_obs::QueryScope::enter(query_id);
            let _n = vdr_obs::NodeScope::enter(node.id().0);
            let mut scan_span = vdr_obs::detail_span_with_parent("exec.scan", select_span_id);
            scan_span.set_node(node.id().0);
            if use_encoded {
                return encoded_node_pipeline(
                    db,
                    stmt,
                    table,
                    node.id(),
                    rec,
                    wanted.as_ref(),
                    &mut scan_span,
                );
            }
            let batches =
                db.storage()
                    .scan_node_projected(table, node.id(), rec, false, wanted.as_ref())?;
            let mut rows_in = 0u64;
            let mut rows_out = 0u64;
            let mut combined: Option<NodeResult> = None;
            for batch in batches {
                rows_in += batch.num_rows() as u64;
                let filtered = apply_where(stmt, &batch)?;
                rows_out += filtered.num_rows() as u64;
                let nr = node_result(stmt, &filtered)?;
                combined = Some(match combined {
                    None => nr,
                    Some(acc) => acc.merge(nr)?,
                });
            }
            scan_span.record("rows_in", rows_in);
            scan_span.record("rows_out", rows_out);
            vdr_obs::counter_on("exec.scan.rows", node.id().0, rows_in);
            vdr_obs::counter_on("exec.filter.rows", node.id().0, rows_out);
            match combined {
                Some(c) => Ok(c),
                // Node holds no containers: contribute an empty result.
                None => node_result(stmt, &empty_table_batch(db, table)?),
            }
        })
    };

    // Gather partial results to the initiator, charging the network.
    let mut gather_span = vdr_obs::span("exec.gather");
    let mut gathered: Vec<NodeResult> = Vec::with_capacity(per_node.len());
    let mut gather_bytes = 0u64;
    for (i, r) in per_node.into_iter().enumerate() {
        let nr = r?;
        gather_bytes += nr.byte_size();
        rec.net(NodeId(i), INITIATOR, nr.byte_size());
        gathered.push(nr);
    }
    gather_span.record("bytes", gather_bytes);
    vdr_obs::counter("exec.gather.bytes", gather_bytes);
    drop(gather_span);
    let merged = gathered
        .into_iter()
        .reduce(|a, b| a.merge(b).expect("schemas identical across nodes"))
        .ok_or_else(|| DbError::Exec("no nodes produced results".into()))?;

    let out = merged.finalize(stmt)?;
    select_span.record("rows_out", out.num_rows());
    vdr_obs::counter("exec.output.rows", out.num_rows() as u64);
    Ok(out)
}

fn empty_table_batch(db: &VerticaDb, table: &str) -> Result<Batch> {
    Ok(Batch::empty(db.catalog().get(table)?.schema))
}

/// Apply the WHERE clause, borrowing the input when nothing is filtered
/// out (no predicate, or an all-true mask) so cached batches aren't copied.
fn apply_where<'a>(stmt: &SelectStmt, batch: &'a Batch) -> Result<Cow<'a, Batch>> {
    match &stmt.where_clause {
        Some(pred) => {
            let mask = pred.eval_predicate(batch)?;
            if mask.all_set() {
                Ok(Cow::Borrowed(batch))
            } else {
                Ok(Cow::Owned(batch.filter(&mask)?))
            }
        }
        None => Ok(Cow::Borrowed(batch)),
    }
}

fn add_expr_columns(set: &mut HashSet<String>, e: &Expr) {
    for c in e.columns() {
        set.insert(c.to_ascii_lowercase());
    }
}

/// The lowercased set of table columns a SELECT references anywhere
/// (projection, WHERE, ORDER BY, GROUP BY) — the scan only needs to decode
/// these. `None` means "all columns" (a wildcard appears). An empty set is
/// legitimate (`SELECT count(*)`): the decoder keeps one cheap column to
/// preserve row counts.
fn referenced_columns(stmt: &SelectStmt) -> Option<HashSet<String>> {
    let mut cols = HashSet::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => return None,
            SelectItem::Expr { expr, .. } => add_expr_columns(&mut cols, expr),
            SelectItem::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    add_expr_columns(&mut cols, a);
                }
            }
            SelectItem::Transform { args, .. } => {
                for a in args {
                    add_expr_columns(&mut cols, a);
                }
            }
        }
    }
    if let Some(w) = &stmt.where_clause {
        add_expr_columns(&mut cols, w);
    }
    for k in &stmt.order_by {
        add_expr_columns(&mut cols, &k.expr);
    }
    for g in &stmt.group_by {
        add_expr_columns(&mut cols, g);
    }
    Some(cols)
}

// -------------------------------------------------- compressed execution

/// Is `e` a predicate the encoded evaluator handles natively: an And/Or tree
/// whose leaves are boolean literals or column-vs-literal comparisons (either
/// operand order)? Anything else (LIKE, IN, col-vs-col, arithmetic inside
/// the comparison) needs fully decoded columns, so the planner keeps those
/// statements on the decoded path.
fn encodable_predicate(e: &Expr) -> bool {
    match e {
        Expr::Literal(Value::Bool(_)) => true,
        Expr::Binary {
            op: BinOp::And | BinOp::Or,
            left,
            right,
        } => encodable_predicate(left) && encodable_predicate(right),
        Expr::Binary { op, left, right } if op.is_comparison() => matches!(
            (&**left, &**right),
            (Expr::Column(_), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(_))
        ),
        _ => false,
    }
}

/// The planner's encoded-vs-decoded decision for a regular table scan.
/// Encoded execution pays off when the filter can run per-run/per-code
/// (encodable WHERE) or when a GROUP BY can aggregate over dictionary codes;
/// a bare full-table SELECT gains nothing from the detour, so it stays on
/// the decoded path (whose cache tier it already warms).
fn encoded_execution_eligible(stmt: &SelectStmt) -> bool {
    if !compressed_execution() {
        return false;
    }
    match &stmt.where_clause {
        Some(w) => encodable_predicate(w),
        None => !stmt.group_by.is_empty(),
    }
}

/// What one node's encoded pipeline did, for the cost ledger and the
/// `scan.encoded.*` counters.
#[derive(Debug, Default)]
struct EncodedScanStats {
    /// Per-row predicate evaluations avoided by run/code kernels.
    runs_skipped: u64,
    /// Distinct dictionary codes a predicate actually compared.
    codes_tested: u64,
    /// Filter-surviving rows decoded out of encoded columns afterwards.
    late_materialized_rows: u64,
    /// Values expanded from encoded form (per column × row) — the decode
    /// work the ledger charges at scan cost.
    expanded_values: u64,
}

/// Per-node compressed-execution pipeline: encoded scan → encoded predicate
/// → dictionary GROUP BY or late materialization → partial result.
fn encoded_node_pipeline(
    db: &VerticaDb,
    stmt: &SelectStmt,
    table: &str,
    node: NodeId,
    rec: &Arc<PhaseRecorder>,
    wanted: Option<&HashSet<String>>,
    scan_span: &mut vdr_obs::SpanGuard<'static>,
) -> Result<NodeResult> {
    let batches = db
        .storage()
        .scan_node_encoded(table, node, rec, false, wanted)?;
    let scan_cost = db.cluster().profile().costs.db_scan_ns_per_value;
    let mut stats = EncodedScanStats::default();
    let mut rows_in = 0u64;
    let mut rows_out = 0u64;
    let mut combined: Option<NodeResult> = None;
    for eb in batches {
        rows_in += eb.num_rows() as u64;
        let mask = match &stmt.where_clause {
            Some(pred) => eval_predicate_encoded(pred, &eb, &mut stats)?,
            None => Bitmap::all_valid(eb.num_rows()),
        };
        rows_out += mask.count_set() as u64;
        let nr = encoded_node_result(stmt, &eb, &mask, &mut stats)?;
        combined = Some(match combined {
            None => nr,
            Some(acc) => acc.merge(nr)?,
        });
    }
    // Expansion out of encoded form is the decode work this path deferred;
    // charge it at the same per-value scan cost the eager decoder pays.
    if stats.expanded_values > 0 {
        rec.cpu_work(node, stats.expanded_values as f64, scan_cost);
    }
    scan_span.record("rows_in", rows_in);
    scan_span.record("rows_out", rows_out);
    vdr_obs::counter_on("exec.scan.rows", node.0, rows_in);
    vdr_obs::counter_on("exec.filter.rows", node.0, rows_out);
    if stats.runs_skipped > 0 {
        vdr_obs::counter_on("scan.encoded.runs_skipped", node.0, stats.runs_skipped);
    }
    if stats.codes_tested > 0 {
        vdr_obs::counter_on("scan.encoded.codes_tested", node.0, stats.codes_tested);
    }
    if stats.late_materialized_rows > 0 {
        vdr_obs::counter_on(
            "scan.encoded.late_materialized_rows",
            node.0,
            stats.late_materialized_rows,
        );
    }
    match combined {
        Some(c) => Ok(c),
        None => node_result(stmt, &empty_table_batch(db, table)?),
    }
}

/// Turn one filtered encoded batch into a partial result: the dictionary
/// GROUP BY fast path when it applies, otherwise late materialization of the
/// survivors followed by the ordinary per-node operators.
fn encoded_node_result(
    stmt: &SelectStmt,
    eb: &EncodedBatch,
    mask: &Bitmap,
    stats: &mut EncodedScanStats,
) -> Result<NodeResult> {
    if stmt.has_aggregates() || !stmt.group_by.is_empty() {
        if let Some(nr) = aggregate_partial_dict(stmt, eb, mask, stats)? {
            return Ok(nr);
        }
    }
    let (batch, expanded) = eb.materialize(mask, None)?;
    stats.expanded_values += expanded;
    if expanded > 0 {
        stats.late_materialized_rows += mask.count_set() as u64;
    }
    node_result(stmt, &batch)
}

/// Evaluate a WHERE predicate against an encoded batch, producing the same
/// is-TRUE selection mask [`Expr::eval_predicate`] would on decoded columns.
/// RLE columns compare once per run ([`kernels::cmp_scalar_rle`]),
/// dictionary columns once per distinct code
/// ([`kernels::cmp_scalar_dict`]); leaves outside the encoded kernels decode
/// just their own column and fall back to the decoded evaluator.
fn eval_predicate_encoded(
    e: &Expr,
    eb: &EncodedBatch,
    stats: &mut EncodedScanStats,
) -> Result<Bitmap> {
    let n = eb.num_rows();
    match e {
        Expr::Literal(Value::Bool(true)) => Ok(Bitmap::all_valid(n)),
        Expr::Literal(Value::Bool(false)) => Ok(Bitmap::all_clear(n)),
        Expr::Binary { op, left, right } if matches!(op, BinOp::And | BinOp::Or) => {
            // Same short-circuits as the decoded path: an all-false left arm
            // settles an AND, an all-true left arm an OR.
            let l = eval_predicate_encoded(left, eb, stats)?;
            match op {
                BinOp::And if !l.any_set() => Ok(l),
                BinOp::And => Ok(l.and(&eval_predicate_encoded(right, eb, stats)?)),
                _ if l.all_set() => Ok(l),
                _ => Ok(l.or(&eval_predicate_encoded(right, eb, stats)?)),
            }
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let cop = cmp_op(*op);
            if let (Expr::Column(name), Expr::Literal(v)) = (&**left, &**right) {
                if let Some(mask) = encoded_cmp_leaf(eb, name, cop, v, stats)? {
                    return Ok(mask);
                }
            }
            if let (Expr::Literal(v), Expr::Column(name)) = (&**left, &**right) {
                if let Some(mask) = encoded_cmp_leaf(eb, name, cop.flip(), v, stats)? {
                    return Ok(mask);
                }
            }
            decoded_predicate_leaf(e, eb)
        }
        _ => decoded_predicate_leaf(e, eb),
    }
}

/// Try the encoded comparison kernels for `column cop literal`. `Ok(None)`
/// means "no encoded kernel applies" (decoded column, bool runs, or a
/// type/kernels mismatch) and the caller falls back.
fn encoded_cmp_leaf(
    eb: &EncodedBatch,
    name: &str,
    cop: CmpOp,
    lit: &Value,
    stats: &mut EncodedScanStats,
) -> Result<Option<Bitmap>> {
    let ScanColumn::Encoded(col) = eb.column_by_name(name)? else {
        return Ok(None);
    };
    if let Some(rhs) = literal_num(lit) {
        if let Some((mask, s)) = kernels::cmp_scalar_rle(col, cop, rhs) {
            stats.runs_skipped += s.rows_skipped();
            return Ok(Some(mask));
        }
    }
    if let Value::Varchar(s) = lit {
        if let Some((mask, s)) = kernels::cmp_scalar_dict(col, cop, s) {
            stats.codes_tested += s.comparisons;
            return Ok(Some(mask));
        }
    }
    Ok(None)
}

/// Fallback for a predicate leaf the encoded kernels can't take: decode only
/// the columns that leaf references (all rows — the mask isn't known yet)
/// and run the decoded evaluator over the single-purpose batch.
fn decoded_predicate_leaf(e: &Expr, eb: &EncodedBatch) -> Result<Bitmap> {
    let cols: HashSet<String> = e.columns().iter().map(|c| c.to_ascii_lowercase()).collect();
    let all = Bitmap::all_valid(eb.num_rows());
    let subset = if cols.is_empty() { None } else { Some(&cols) };
    let (batch, _) = eb.materialize(&all, subset)?;
    e.eval_predicate(&batch)
}

/// Dictionary-code GROUP BY: a single `GROUP BY col` over a
/// dictionary-encoded column aggregates into a dense per-code table (slot =
/// code, one extra slot for NULL) instead of hashing decoded strings. Only
/// the aggregate-argument columns materialize, and only for mask survivors.
/// Returns `Ok(None)` when the shape doesn't fit and the caller should late-
/// materialize instead.
fn aggregate_partial_dict(
    stmt: &SelectStmt,
    eb: &EncodedBatch,
    mask: &Bitmap,
    stats: &mut EncodedScanStats,
) -> Result<Option<NodeResult>> {
    let [Expr::Column(key_name)] = stmt.group_by.as_slice() else {
        return Ok(None);
    };
    let Ok(ScanColumn::Encoded(key)) = eb.column_by_name(key_name) else {
        return Ok(None);
    };
    let Some((dict, codes)) = key.dict() else {
        return Ok(None);
    };
    let specs = agg_specs(stmt)?;
    let mut arg_cols_set = HashSet::new();
    for (_, arg, _) in &specs {
        if let Some(a) = arg {
            add_expr_columns(&mut arg_cols_set, a);
        }
    }
    let (arg_batch, expanded) = eb.materialize(mask, Some(&arg_cols_set))?;
    stats.expanded_values += expanded;
    let arg_cols: Vec<Option<Column>> = specs
        .iter()
        .map(|(_, arg, _)| arg.as_ref().map(|e| e.eval(&arg_batch)).transpose())
        .collect::<Result<_>>()?;
    let validity = key.validity();
    // Dense per-code accumulators; the last slot collects NULL keys.
    let mut dense: Vec<Option<Vec<AggState>>> = vec![None; dict.len() + 1];
    let mut dense_row = 0usize;
    mask.for_each_set(|row| {
        let slot = if validity.get(row) {
            codes[row] as usize
        } else {
            dict.len()
        };
        let states = dense[slot].get_or_insert_with(|| {
            specs
                .iter()
                .map(|(_, _, d)| AggState::for_spec(*d))
                .collect()
        });
        for (s, col) in states.iter_mut().zip(&arg_cols) {
            s.update(col.as_ref().map(|c| c.get(dense_row)).as_ref());
        }
        dense_row += 1;
    });
    // Re-key into the merge-compatible hash form; codes map back to their
    // dictionary strings exactly as a decoded GROUP BY would produce them.
    let mut groups: HashMap<GroupKey, Vec<AggState>> = HashMap::new();
    for (slot, states) in dense.into_iter().enumerate() {
        let Some(states) = states else { continue };
        let key_val = if slot == dict.len() {
            Value::Null
        } else {
            Value::Varchar(dict[slot].clone())
        };
        groups.insert(GroupKey(vec![key_val]), states);
    }
    Ok(Some(NodeResult::Aggregated {
        groups,
        num_aggs: specs.len(),
    }))
}

// --------------------------------------------------- per-node partial state

/// What a node contributes to the final answer: either projected rows (with
/// hidden ORDER BY key columns appended) or partial aggregate states.
enum NodeResult {
    Rows(Batch),
    Aggregated {
        /// key → (group key values, per-aggregate partial state)
        groups: HashMap<GroupKey, Vec<AggState>>,
        num_aggs: usize,
    },
}

fn node_result(stmt: &SelectStmt, batch: &Batch) -> Result<NodeResult> {
    if stmt.has_aggregates() || !stmt.group_by.is_empty() {
        aggregate_partial(stmt, batch)
    } else {
        Ok(NodeResult::Rows(project_rows_with_order_keys(stmt, batch)?))
    }
}

impl NodeResult {
    fn byte_size(&self) -> u64 {
        match self {
            NodeResult::Rows(b) => b.byte_size(),
            // Each group ships its key values plus per-aggregate state —
            // a COUNT(DISTINCT) state carrying thousands of keys costs
            // what it actually weighs on the wire.
            NodeResult::Aggregated { groups, .. } => groups
                .iter()
                .map(|(key, states)| {
                    key.0.iter().map(value_size).sum::<u64>()
                        + states.iter().map(AggState::byte_size).sum::<u64>()
                })
                .sum(),
        }
    }

    fn merge(self, other: NodeResult) -> Result<NodeResult> {
        match (self, other) {
            (NodeResult::Rows(mut a), NodeResult::Rows(b)) => {
                a.extend(&b)?;
                Ok(NodeResult::Rows(a))
            }
            (
                NodeResult::Aggregated {
                    mut groups,
                    num_aggs,
                },
                NodeResult::Aggregated { groups: og, .. },
            ) => {
                for (k, states) in og {
                    match groups.get_mut(&k) {
                        Some(mine) => {
                            for (m, o) in mine.iter_mut().zip(states) {
                                m.merge(&o);
                            }
                        }
                        None => {
                            groups.insert(k, states);
                        }
                    }
                }
                Ok(NodeResult::Aggregated { groups, num_aggs })
            }
            _ => Err(DbError::Exec("mixed partial result kinds".into())),
        }
    }

    /// Build the final batch on the initiator: final aggregation or
    /// sort/offset/limit of gathered rows.
    fn finalize(self, stmt: &SelectStmt) -> Result<Batch> {
        match self {
            NodeResult::Rows(batch) => {
                let sorted = apply_order_by_hidden(stmt, batch)?;
                Ok(apply_offset_limit(stmt, sorted))
            }
            NodeResult::Aggregated { groups, .. } => {
                let batch = finalize_aggregates(stmt, groups)?;
                // ORDER BY on aggregate output refers to output column names.
                let sorted = if stmt.order_by.is_empty() {
                    batch
                } else {
                    sort_by_exprs(
                        batch,
                        &stmt
                            .order_by
                            .iter()
                            .map(|k| (k.expr.clone(), k.desc))
                            .collect::<Vec<_>>(),
                    )?
                };
                Ok(apply_offset_limit(stmt, sorted))
            }
        }
    }
}

// ------------------------------------------------------------- projections

fn item_name(i: usize, item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => unreachable!("wildcard expanded before naming"),
        SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| match expr {
            Expr::Column(c) => c.clone(),
            other => format!("col{i}_{other}"),
        }),
        SelectItem::Aggregate { func, alias, .. } => {
            alias.clone().unwrap_or_else(|| func.name().to_string())
        }
        SelectItem::Transform { name, .. } => name.clone(),
    }
}

/// Expand `*` into per-column expression items against `batch`'s schema.
fn expand_items(stmt: &SelectStmt, batch: &Batch) -> Vec<SelectItem> {
    let mut out = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for f in batch.schema().fields() {
                    out.push(SelectItem::Expr {
                        expr: Expr::Column(f.name.clone()),
                        alias: None,
                    });
                }
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// Hidden ORDER BY key columns use this prefix and are stripped after the
/// final sort.
const HIDDEN: &str = "__sortkey_";

fn project_rows_with_order_keys(stmt: &SelectStmt, batch: &Batch) -> Result<Batch> {
    let items = expand_items(stmt, batch);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let SelectItem::Expr { expr, .. } = item else {
            return Err(DbError::Plan(
                "aggregates cannot mix with plain columns without GROUP BY".into(),
            ));
        };
        let col = expr.eval(batch)?;
        fields.push(Field::new(item_name(i, item), col.data_type()));
        columns.push(col);
    }
    for (i, key) in stmt.order_by.iter().enumerate() {
        let col = key.expr.eval(batch)?;
        fields.push(Field::new(format!("{HIDDEN}{i}"), col.data_type()));
        columns.push(col);
    }
    Ok(Batch::new(Schema::new(fields), columns)?)
}

fn project_batch(stmt: &SelectStmt, batch: &Batch) -> Result<Batch> {
    let projected = project_rows_with_order_keys(stmt, batch)?;
    let sorted = apply_order_by_hidden(stmt, projected)?;
    Ok(apply_offset_limit(stmt, sorted))
}

fn apply_order_by_hidden(stmt: &SelectStmt, batch: Batch) -> Result<Batch> {
    if stmt.order_by.is_empty() {
        return Ok(batch);
    }
    let keys: Vec<(Expr, bool)> = stmt
        .order_by
        .iter()
        .enumerate()
        .map(|(i, k)| (Expr::col(&format!("{HIDDEN}{i}")), k.desc))
        .collect();
    let sorted = sort_by_exprs(batch, &keys)?;
    // Strip hidden columns.
    let visible: Vec<&str> = sorted
        .schema()
        .names()
        .into_iter()
        .filter(|n| !n.starts_with(HIDDEN))
        .collect();
    Ok(sorted.project(&visible)?)
}

/// Stable sort of `batch` rows by the given key expressions.
fn sort_by_exprs(batch: Batch, keys: &[(Expr, bool)]) -> Result<Batch> {
    let mut key_cols = Vec::with_capacity(keys.len());
    for (e, desc) in keys {
        key_cols.push((e.eval(&batch)?, *desc));
    }
    let mut idx: Vec<usize> = (0..batch.num_rows()).collect();
    let mut sort_err = None;
    idx.sort_by(|&a, &b| {
        for (col, desc) in &key_cols {
            let va = col.get(a);
            let vb = col.get(b);
            // SQL: NULLs sort last regardless of direction.
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => match compare_values(&va, &vb) {
                    Ok(o) => {
                        if *desc {
                            o.reverse()
                        } else {
                            o
                        }
                    }
                    Err(e) => {
                        sort_err.get_or_insert(e);
                        std::cmp::Ordering::Equal
                    }
                },
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(e) = sort_err {
        return Err(e);
    }
    Ok(batch.take(&idx))
}

fn apply_offset_limit(stmt: &SelectStmt, batch: Batch) -> Batch {
    let n = batch.num_rows();
    let start = stmt.offset.unwrap_or(0).min(n as u64) as usize;
    let end = match stmt.limit {
        Some(l) => (start as u64 + l).min(n as u64) as usize,
        None => n,
    };
    batch.slice(start, end)
}

// -------------------------------------------------------------- aggregation

/// Group key: values compared with float-bit equality so NaN groups behave.
#[derive(Debug, Clone)]
struct GroupKey(Vec<Value>);

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len()
            && self.0.iter().zip(&other.0).all(|(a, b)| match (a, b) {
                (Value::Float64(x), Value::Float64(y)) => x.to_bits() == y.to_bits(),
                (a, b) => a == b,
            })
    }
}

impl Eq for GroupKey {}

impl std::hash::Hash for GroupKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            state.write_u64(hash_value(v));
        }
    }
}

/// A partial aggregate: enough to compute COUNT/SUM/AVG/MIN/MAX after any
/// number of merges.
#[derive(Debug, Clone, Default)]
struct AggState {
    rows: u64,
    non_null: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
    /// Canonical encodings of values seen, for `COUNT(DISTINCT e)`.
    /// `None` when the aggregate isn't distinct (no memory overhead).
    distinct: Option<std::collections::BTreeSet<Vec<u8>>>,
}

/// A canonical byte encoding for grouping/distinct purposes: type tag plus
/// value bytes (floats by bit pattern so NaNs dedupe).
fn value_key(v: &Value) -> Vec<u8> {
    match v {
        Value::Null => vec![0],
        Value::Int64(x) => {
            let mut out = vec![1];
            out.extend_from_slice(&x.to_le_bytes());
            out
        }
        Value::Float64(x) => {
            let mut out = vec![2];
            out.extend_from_slice(&x.to_bits().to_le_bytes());
            out
        }
        Value::Bool(b) => vec![3, *b as u8],
        Value::Varchar(s) => {
            let mut out = vec![4];
            out.extend_from_slice(s.as_bytes());
            out
        }
    }
}

/// Serialized size of one [`Value`] in the gather wire accounting: a type
/// tag plus the payload ([`value_key`]'s shape).
fn value_size(v: &Value) -> u64 {
    match v {
        Value::Null => 1,
        Value::Int64(_) | Value::Float64(_) => 9,
        Value::Bool(_) => 2,
        Value::Varchar(s) => 1 + s.len() as u64,
    }
}

impl AggState {
    /// Wire size of this partial state: the three fixed counters, the
    /// min/max values if set, and every distinct key actually carried.
    fn byte_size(&self) -> u64 {
        let mut n = 24; // rows + non_null + sum
        if let Some(v) = &self.min {
            n += value_size(v);
        }
        if let Some(v) = &self.max {
            n += value_size(v);
        }
        if let Some(set) = &self.distinct {
            n += set.iter().map(|k| k.len() as u64).sum::<u64>();
        }
        n
    }

    fn for_spec(distinct: bool) -> AggState {
        AggState {
            distinct: distinct.then(std::collections::BTreeSet::new),
            ..Default::default()
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        self.rows += 1;
        let Some(v) = v else { return };
        if v.is_null() {
            return;
        }
        self.non_null += 1;
        if let Some(set) = &mut self.distinct {
            set.insert(value_key(v));
        }
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        let better_min = match &self.min {
            None => true,
            Some(m) => compare_values(v, m).map(|o| o.is_lt()).unwrap_or(false),
        };
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = match &self.max {
            None => true,
            Some(m) => compare_values(v, m).map(|o| o.is_gt()).unwrap_or(false),
        };
        if better_max {
            self.max = Some(v.clone());
        }
    }

    fn merge(&mut self, other: &AggState) {
        self.rows += other.rows;
        self.non_null += other.non_null;
        self.sum += other.sum;
        if let (Some(mine), Some(theirs)) = (&mut self.distinct, &other.distinct) {
            mine.extend(theirs.iter().cloned());
        }
        if let Some(om) = &other.min {
            let better = match &self.min {
                None => true,
                Some(m) => compare_values(om, m).map(|o| o.is_lt()).unwrap_or(false),
            };
            if better {
                self.min = Some(om.clone());
            }
        }
        if let Some(om) = &other.max {
            let better = match &self.max {
                None => true,
                Some(m) => compare_values(om, m).map(|o| o.is_gt()).unwrap_or(false),
            };
            if better {
                self.max = Some(om.clone());
            }
        }
    }

    fn finalize(&self, func: AggFunc, counting_star: bool) -> Value {
        match func {
            AggFunc::Count => {
                if let Some(set) = &self.distinct {
                    Value::Int64(set.len() as i64)
                } else if counting_star {
                    Value::Int64(self.rows as i64)
                } else {
                    Value::Int64(self.non_null as i64)
                }
            }
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Value::Null
                } else {
                    Value::Float64(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Value::Null
                } else {
                    Value::Float64(self.sum / self.non_null as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Validate the select list of an aggregating statement and collect the
/// aggregate specs: every non-aggregate item must be a GROUP BY expression.
fn agg_specs(stmt: &SelectStmt) -> Result<Vec<(AggFunc, Option<Expr>, bool)>> {
    let mut specs: Vec<(AggFunc, Option<Expr>, bool)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Aggregate {
                func,
                arg,
                distinct,
                ..
            } => specs.push((*func, arg.clone(), *distinct)),
            SelectItem::Expr { expr, .. } => {
                if !stmt.group_by.iter().any(|g| g == expr) {
                    return Err(DbError::Plan(format!(
                        "'{expr}' must appear in GROUP BY or inside an aggregate"
                    )));
                }
            }
            SelectItem::Wildcard => {
                return Err(DbError::Plan("'*' cannot mix with aggregates".into()))
            }
            SelectItem::Transform { .. } => unreachable!("handled earlier"),
        }
    }
    Ok(specs)
}

fn aggregate_partial(stmt: &SelectStmt, batch: &Batch) -> Result<NodeResult> {
    let agg_specs = agg_specs(stmt)?;

    let key_cols: Vec<Column> = stmt
        .group_by
        .iter()
        .map(|e| e.eval(batch))
        .collect::<Result<_>>()?;
    let arg_cols: Vec<Option<Column>> = agg_specs
        .iter()
        .map(|(_, arg, _)| arg.as_ref().map(|e| e.eval(batch)).transpose())
        .collect::<Result<_>>()?;

    let mut groups: HashMap<GroupKey, Vec<AggState>> = HashMap::new();
    for row in 0..batch.num_rows() {
        let key = GroupKey(key_cols.iter().map(|c| c.get(row)).collect());
        let states = groups.entry(key).or_insert_with(|| {
            agg_specs
                .iter()
                .map(|(_, _, d)| AggState::for_spec(*d))
                .collect()
        });
        for (s, col) in states.iter_mut().zip(&arg_cols) {
            s.update(col.as_ref().map(|c| c.get(row)).as_ref());
        }
    }
    // Global aggregation (no GROUP BY) over an empty input still yields one
    // group so `SELECT count(*) FROM empty` returns 0.
    if groups.is_empty() && stmt.group_by.is_empty() {
        groups.insert(
            GroupKey(vec![]),
            agg_specs
                .iter()
                .map(|(_, _, d)| AggState::for_spec(*d))
                .collect(),
        );
    }
    Ok(NodeResult::Aggregated {
        groups,
        num_aggs: agg_specs.len(),
    })
}

fn finalize_aggregates(
    stmt: &SelectStmt,
    groups: HashMap<GroupKey, Vec<AggState>>,
) -> Result<Batch> {
    // Deterministic output: sort groups by key.
    let mut entries: Vec<(GroupKey, Vec<AggState>)> = groups.into_iter().collect();
    entries.sort_by(|(a, _), (b, _)| {
        for (x, y) in a.0.iter().zip(&b.0) {
            let ord = match (x.is_null(), y.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                _ => compare_values(x, y).unwrap_or(std::cmp::Ordering::Equal),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });

    // Output columns follow the select list order.
    let mut builders: Vec<(String, ColumnBuilder)> = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        let name = item_name(i, item);
        let dtype = match item {
            SelectItem::Aggregate { func, .. } => match func {
                AggFunc::Count => DataType::Int64,
                AggFunc::Sum | AggFunc::Avg => DataType::Float64,
                // MIN/MAX keep input type; infer from the first group later.
                AggFunc::Min | AggFunc::Max => DataType::Float64,
            },
            _ => DataType::Float64,
        };
        builders.push((name, ColumnBuilder::new(dtype)));
    }

    // MIN/MAX and group keys need real types: rebuild builders by peeking at
    // the first group's values.
    if let Some((key, states)) = entries.first() {
        let mut agg_idx = 0usize;
        for (i, item) in stmt.items.iter().enumerate() {
            let dtype = match item {
                SelectItem::Aggregate { func, .. } => {
                    let v = states[agg_idx].finalize(
                        *func,
                        matches!(item, SelectItem::Aggregate { arg: None, .. }),
                    );
                    agg_idx += 1;
                    match (func, v.data_type()) {
                        (AggFunc::Count, _) => DataType::Int64,
                        (AggFunc::Sum | AggFunc::Avg, _) => DataType::Float64,
                        (_, Some(dt)) => dt,
                        (_, None) => DataType::Float64,
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    let gi = stmt
                        .group_by
                        .iter()
                        .position(|g| g == expr)
                        .expect("validated in aggregate_partial");
                    key.0[gi].data_type().unwrap_or(DataType::Float64)
                }
                _ => DataType::Float64,
            };
            builders[i] = (builders[i].0.clone(), ColumnBuilder::new(dtype));
        }
    }

    for (key, states) in &entries {
        let mut agg_idx = 0usize;
        for (i, item) in stmt.items.iter().enumerate() {
            let value = match item {
                SelectItem::Aggregate { func, arg, .. } => {
                    let v = states[agg_idx].finalize(*func, arg.is_none());
                    agg_idx += 1;
                    v
                }
                SelectItem::Expr { expr, .. } => {
                    let gi = stmt
                        .group_by
                        .iter()
                        .position(|g| g == expr)
                        .expect("validated");
                    key.0[gi].clone()
                }
                _ => unreachable!(),
            };
            builders[i].1.push(value)?;
        }
    }

    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (name, b) in builders {
        let col = b.finish();
        fields.push(Field::new(name, col.data_type()));
        columns.push(col);
    }
    Ok(Batch::new(Schema::new(fields), columns)?)
}

// --------------------------------------------------------------- transforms

#[allow(clippy::too_many_arguments)]
fn run_transform(
    db: &VerticaDb,
    stmt: &SelectStmt,
    name: &str,
    args: &[Expr],
    params: &std::collections::BTreeMap<String, String>,
    partition: &Partition,
    rec: &Arc<PhaseRecorder>,
) -> Result<Batch> {
    let table = stmt
        .from
        .as_deref()
        .ok_or_else(|| DbError::Plan("transform functions require a FROM table".into()))?;
    let def = db.catalog().get(table)?;
    let func = db.udx().get(name)?;

    let mut tf_span = vdr_obs::span("exec.transform");
    tf_span.record("function", name);
    tf_span.record("table", table);
    let tf_span_id = tf_span.id();

    // Input schema: the evaluated argument columns, named after column refs
    // where possible.
    let arg_fields: Vec<Field> = args
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let name = match e {
                Expr::Column(c) => c.clone(),
                other => format!("arg{i}_{other}"),
            };
            // Types resolved against an empty batch of the table schema.
            let probe = Batch::empty(def.schema.clone());
            e.output_type(&probe).map(|t| Field::new(name, t))
        })
        .collect::<Result<_>>()?;
    let input_schema = Schema::new(arg_fields);
    let out_schema = func.output_schema(&input_schema, params)?;

    // PARTITION BEST: the planner is resource-aware — it spawns up to the
    // profile's export-lane count per node, bounded by the containers
    // available (an instance with no containers would idle).
    let lanes = db.cluster().profile().costs.vft_export_lanes;
    // Transforms reference a known column set — function args, WHERE, and
    // the PARTITION BY routing column — so the scan always gets a
    // projection to push down.
    let wanted: HashSet<String> = {
        let mut cols = HashSet::new();
        for a in args {
            add_expr_columns(&mut cols, a);
        }
        if let Some(w) = &stmt.where_clause {
            add_expr_columns(&mut cols, w);
        }
        if let Partition::By(col) = partition {
            cols.insert(col.to_ascii_lowercase());
        }
        cols
    };
    // Scatter workers and rayon instances run on their own threads;
    // re-enter the query scope in each so their spans stay attributed.
    let query_id = vdr_obs::current_query_id();
    let per_node_outputs: Vec<Result<Vec<Batch>>> = db.cluster().scatter(|node| {
        let _q = vdr_obs::QueryScope::enter(query_id);
        let node_id = node.id();
        let _n = vdr_obs::NodeScope::enter(node_id.0);
        let n_containers = db.storage().containers(table, node_id).len();
        let instances = match partition {
            Partition::Best => lanes.min(n_containers.max(1)),
            Partition::By(_) => lanes,
        };
        rec.set_lanes(node_id, instances);
        node.run(|| -> Result<Vec<Batch>> {
            use rayon::prelude::*;
            let results: Vec<Result<Vec<Batch>>> = (0..instances)
                .into_par_iter()
                .map(|instance| -> Result<Vec<Batch>> {
                    // Rayon pool threads are shared across queries: scope
                    // both the query id and the owning node for the spans
                    // and events this instance records.
                    let _q = vdr_obs::QueryScope::enter(query_id);
                    let _n = vdr_obs::NodeScope::enter(node_id.0);
                    let mut inst_span =
                        vdr_obs::detail_span_with_parent("exec.transform.instance", tf_span_id);
                    inst_span.set_node(node_id.0);
                    inst_span.record("instance", instance);
                    // Each instance reads a disjoint slice of the node's
                    // containers ("UDFs on each database node read a unique
                    // segment of the table stored on that node").
                    let raw = match partition {
                        Partition::Best => db.storage().scan_node_slice(
                            table,
                            node_id,
                            instance,
                            instances,
                            rec,
                            false,
                            Some(&wanted),
                        )?,
                        Partition::By(col) => {
                            // Route rows among local instances by hash(col).
                            let all = if instance == 0 {
                                db.storage().scan_node_projected(
                                    table,
                                    node_id,
                                    rec,
                                    false,
                                    Some(&wanted),
                                )?
                            } else {
                                // Re-read through the page cache: the first
                                // instance warmed it.
                                db.storage().scan_node_projected(
                                    table,
                                    node_id,
                                    rec,
                                    true,
                                    Some(&wanted),
                                )?
                            };
                            let mut mine = Vec::new();
                            for b in all {
                                let key = b.column_by_name(col)?;
                                let mask = Bitmap::from_fn(b.num_rows(), |r| {
                                    (hash_value(&key.get(r)) % instances as u64) as usize
                                        == instance
                                });
                                mine.push(Arc::new(b.filter(&mask)?));
                            }
                            mine
                        }
                    };
                    // WHERE + argument projection.
                    let mut input = Vec::with_capacity(raw.len());
                    for b in raw {
                        let filtered = apply_where(stmt, &b)?;
                        let cols: Vec<Column> = args
                            .iter()
                            .map(|e| e.eval(&filtered))
                            .collect::<Result<_>>()?;
                        input.push(Batch::new(input_schema.clone(), cols)?);
                    }
                    let ctx = UdxContext {
                        node: node_id,
                        instance,
                        instances_per_node: instances,
                        params,
                        dfs: db.dfs(),
                        cluster: db.cluster(),
                        rec,
                    };
                    let rows_in: u64 = input.iter().map(|b| b.num_rows() as u64).sum();
                    let mut out = Vec::new();
                    func.process_partition(&ctx, input, &mut |b| out.push(b))?;
                    let rows_out: u64 = out.iter().map(|b| b.num_rows() as u64).sum();
                    inst_span.record("rows_in", rows_in);
                    inst_span.record("rows_out", rows_out);
                    vdr_obs::counter_on("exec.transform.rows_in", node_id.0, rows_in);
                    vdr_obs::counter_on("exec.transform.rows_out", node_id.0, rows_out);
                    Ok(out)
                })
                .collect();
            let mut merged = Vec::new();
            for r in results {
                merged.extend(r?);
            }
            Ok(merged)
        })
    });

    // Collect outputs. Transform results materialize node-locally (as an
    // INSERT…SELECT would); we do not charge a gather — the paper's
    // prediction experiments measure in-database execution, not shipping a
    // billion rows to a client.
    let mut out = Batch::empty(out_schema);
    for node_batches in per_node_outputs {
        for b in node_batches? {
            out.extend(&b)?;
        }
    }
    let out = apply_offset_limit(stmt, out);
    tf_span.record("rows_out", out.num_rows());
    vdr_obs::counter("exec.output.rows", out.num_rows() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::VerticaDb;
    use vdr_cluster::SimCluster;

    fn db_with_data() -> Arc<VerticaDb> {
        let cluster = SimCluster::for_tests(3);
        let db = VerticaDb::new(cluster);
        db.query("CREATE TABLE t (id INTEGER, x FLOAT, tag VARCHAR) SEGMENTED BY HASH(id)")
            .unwrap();
        db.query(
            "INSERT INTO t VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'a'), \
             (4, 4.5, 'b'), (5, 5.5, 'a'), (6, 6.5, 'c')",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_star_returns_all_rows() {
        let db = db_with_data();
        let out = db.query("SELECT * FROM t").unwrap().batch;
        assert_eq!(out.num_rows(), 6);
        assert_eq!(out.schema().names(), vec!["id", "x", "tag"]);
    }

    #[test]
    fn where_filters_across_nodes() {
        let db = db_with_data();
        let out = db.query("SELECT id FROM t WHERE x > 3.0").unwrap().batch;
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn order_by_limit_offset_shapes_odbc_range_queries() {
        let db = db_with_data();
        let out = db
            .query("SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 2")
            .unwrap()
            .batch;
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(0).get(0), Value::Int64(3));
        assert_eq!(out.column(0).get(1), Value::Int64(4));
        // DESC
        let out = db
            .query("SELECT id FROM t ORDER BY id DESC LIMIT 1")
            .unwrap()
            .batch;
        assert_eq!(out.column(0).get(0), Value::Int64(6));
    }

    #[test]
    fn order_by_column_not_in_projection() {
        let db = db_with_data();
        let out = db
            .query("SELECT tag FROM t ORDER BY x DESC LIMIT 1")
            .unwrap()
            .batch;
        assert_eq!(out.column(0).get(0), Value::Varchar("c".into()));
        assert_eq!(out.schema().names(), vec!["tag"]);
    }

    #[test]
    fn global_aggregates() {
        let db = db_with_data();
        let out = db
            .query("SELECT count(*), sum(x), avg(x), min(id), max(id) FROM t")
            .unwrap()
            .batch;
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int64(6));
        assert_eq!(out.row(0)[1], Value::Float64(24.0));
        assert_eq!(out.row(0)[2], Value::Float64(4.0));
        assert_eq!(out.row(0)[3], Value::Int64(1));
        assert_eq!(out.row(0)[4], Value::Int64(6));
    }

    #[test]
    fn group_by_with_order() {
        let db = db_with_data();
        let out = db
            .query("SELECT tag, count(*) AS n, avg(x) FROM t GROUP BY tag ORDER BY n DESC")
            .unwrap()
            .batch;
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.row(0)[0], Value::Varchar("a".into()));
        assert_eq!(out.row(0)[1], Value::Int64(3));
        assert_eq!(out.row(2)[0], Value::Varchar("c".into()));
    }

    #[test]
    fn aggregate_of_empty_table_is_zero() {
        let cluster = SimCluster::for_tests(2);
        let db = VerticaDb::new(cluster);
        db.query("CREATE TABLE e (a INTEGER)").unwrap();
        let out = db.query("SELECT count(*) FROM e").unwrap().batch;
        assert_eq!(out.row(0)[0], Value::Int64(0));
        let out = db.query("SELECT sum(a) FROM e").unwrap().batch;
        assert_eq!(out.row(0)[0], Value::Null);
    }

    #[test]
    fn expressions_and_aliases_in_projection() {
        let db = db_with_data();
        let out = db
            .query("SELECT id * 2 AS double_id, sqrt(x * x) FROM t ORDER BY id LIMIT 1")
            .unwrap()
            .batch;
        assert_eq!(out.schema().names()[0], "double_id");
        assert_eq!(out.row(0)[0], Value::Int64(2));
        assert_eq!(out.row(0)[1], Value::Float64(1.5));
    }

    #[test]
    fn non_grouped_column_rejected() {
        let db = db_with_data();
        let err = db.query("SELECT tag, count(*) FROM t").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = db_with_data();
        assert!(db.query("SELECT * FROM missing").is_err());
        assert!(db.query("SELECT nope FROM t").is_err());
    }

    #[test]
    fn fromless_select() {
        let db = db_with_data();
        let out = db.query("SELECT 1 + 2 AS three").unwrap().batch;
        assert_eq!(out.row(0)[0], Value::Int64(3));
        assert_eq!(out.schema().names(), vec!["three"]);
    }

    #[test]
    fn insert_validates_arity() {
        let db = db_with_data();
        assert!(db.query("INSERT INTO t VALUES (1, 2.0)").is_err());
    }

    #[test]
    fn drop_table_variants() {
        let db = db_with_data();
        db.query("DROP TABLE t").unwrap();
        assert!(db.query("SELECT * FROM t").is_err());
        assert!(db.query("DROP TABLE t").is_err());
        db.query("DROP TABLE IF EXISTS t").unwrap();
    }

    #[test]
    fn in_between_like_filters() {
        let db = db_with_data();
        let out = db
            .query("SELECT count(*) FROM t WHERE id IN (1, 3, 5, 99)")
            .unwrap()
            .batch;
        assert_eq!(out.row(0)[0], Value::Int64(3));
        let out = db
            .query("SELECT count(*) FROM t WHERE x BETWEEN 2.0 AND 4.5")
            .unwrap()
            .batch;
        assert_eq!(out.row(0)[0], Value::Int64(3)); // 2.5, 3.5, 4.5
        let out = db
            .query("SELECT count(*) FROM t WHERE tag LIKE 'a%' OR tag LIKE '_'")
            .unwrap()
            .batch;
        assert_eq!(out.row(0)[0], Value::Int64(6)); // every tag is 1 char
        let out = db
            .query("SELECT count(*) FROM t WHERE tag NOT LIKE 'a'")
            .unwrap()
            .batch;
        assert_eq!(out.row(0)[0], Value::Int64(3));
    }

    #[test]
    fn count_distinct_across_nodes() {
        let db = db_with_data();
        // Six rows, three distinct tags, spread over a 3-node cluster —
        // the distinct sets must merge across node partials.
        let out = db
            .query("SELECT count(DISTINCT tag), count(tag), count(*) FROM t")
            .unwrap()
            .batch;
        assert_eq!(out.row(0)[0], Value::Int64(3));
        assert_eq!(out.row(0)[1], Value::Int64(6));
        assert_eq!(out.row(0)[2], Value::Int64(6));
        // Grouped distinct.
        let out = db
            .query("SELECT tag, count(DISTINCT id) AS n FROM t GROUP BY tag ORDER BY tag")
            .unwrap()
            .batch;
        assert_eq!(out.row(0)[0], Value::Varchar("a".into()));
        assert_eq!(out.row(0)[1], Value::Int64(3));
        assert_eq!(out.row(2)[1], Value::Int64(1));
    }

    #[test]
    fn create_table_as_select_materializes_results() {
        let db = db_with_data();
        db.query("CREATE TABLE evens AS SELECT id, x FROM t WHERE id % 2 = 0")
            .unwrap();
        let out = db
            .query("SELECT count(*), sum(id) FROM evens")
            .unwrap()
            .batch;
        assert_eq!(out.row(0)[0], Value::Int64(3)); // 2, 4, 6
        assert_eq!(out.row(0)[1], Value::Float64(12.0)); // SUM widens to float
                                                         // Aggregated CTAS too.
        db.query("CREATE TABLE tag_stats AS SELECT tag, count(*) AS n FROM t GROUP BY tag")
            .unwrap();
        let out = db
            .query("SELECT n FROM tag_stats ORDER BY n DESC LIMIT 1")
            .unwrap()
            .batch;
        assert_eq!(out.row(0)[0], Value::Int64(3));
        // Name collisions fail before any data moves.
        assert!(db.query("CREATE TABLE evens AS SELECT id FROM t").is_err());
    }

    #[test]
    fn group_key_nan_equality() {
        let a = GroupKey(vec![Value::Float64(f64::NAN)]);
        let b = GroupKey(vec![Value::Float64(f64::NAN)]);
        assert_eq!(a, b);
        let c = GroupKey(vec![Value::Float64(0.0)]);
        assert_ne!(a, c);
    }

    // --------------------------------------------- compressed execution

    /// The compressed-execution toggle is process-global; tests that flip it
    /// serialize here so parallel test threads don't observe each other's
    /// setting.
    static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A table whose blocks actually pick RLE (sorted low-cardinality `grp`)
    /// and Dictionary (3-value `tag`) encodings, with NULLs in both.
    fn db_low_cardinality() -> Arc<VerticaDb> {
        let cluster = SimCluster::for_tests(2);
        let db = VerticaDb::new(cluster);
        db.query("CREATE TABLE lc (id INTEGER, grp INTEGER, x FLOAT, tag VARCHAR)")
            .unwrap();
        let mut values = Vec::new();
        for i in 0..600i64 {
            let grp = if i % 97 == 0 {
                "NULL".to_string()
            } else {
                (i / 200).to_string()
            };
            let tag = if i % 89 == 0 {
                "NULL".to_string()
            } else {
                format!("'{}'", ["a", "b", "c"][(i % 3) as usize])
            };
            values.push(format!("({i}, {grp}, {}.5, {tag})", i % 7));
        }
        db.query(&format!("INSERT INTO lc VALUES {}", values.join(", ")))
            .unwrap();
        db
    }

    fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
        (0..b.num_rows()).map(|r| b.row(r)).collect()
    }

    #[test]
    fn compressed_and_decoded_execution_agree() {
        let _g = TOGGLE_LOCK.lock().unwrap();
        let db = db_low_cardinality();
        let queries = [
            // RLE predicate, late-materialized projection.
            "SELECT id, x FROM lc WHERE grp = 1 ORDER BY id",
            // Dictionary predicate plus RLE predicate in an AND tree.
            "SELECT count(*), sum(x) FROM lc WHERE grp >= 1 AND tag = 'b'",
            // OR tree, flipped literal-first operand order.
            "SELECT count(*) FROM lc WHERE 2 <= grp OR tag <> 'a'",
            // Dictionary GROUP BY (dense per-code path) with NULL keys.
            "SELECT tag, count(*) AS n, avg(x), min(id), max(id) FROM lc GROUP BY tag ORDER BY tag",
            // Filtered dictionary GROUP BY with a distinct aggregate.
            "SELECT tag, count(DISTINCT grp) FROM lc WHERE id < 500 GROUP BY tag ORDER BY tag",
            // NULL-heavy predicate: NULL grp rows must drop in both paths.
            "SELECT count(*) FROM lc WHERE grp <= 2",
            // Non-dictionary GROUP BY falls back to late materialization.
            "SELECT grp, count(*) FROM lc WHERE tag = 'c' GROUP BY grp ORDER BY grp",
        ];
        for sql in queries {
            set_compressed_execution(true);
            let on = db.query(sql).unwrap().batch;
            set_compressed_execution(false);
            let off = db.query(sql).unwrap().batch;
            set_compressed_execution(true);
            assert_eq!(
                rows_of(&on),
                rows_of(&off),
                "encoded and decoded paths disagree for {sql}"
            );
        }
    }

    #[test]
    fn encoded_predicate_skips_runs_under_profile() {
        let _g = TOGGLE_LOCK.lock().unwrap();
        set_compressed_execution(true);
        let db = db_low_cardinality();
        db.query("PROFILE SELECT count(*) FROM lc WHERE grp = 1")
            .unwrap();
        db.query("PROFILE SELECT tag, count(*) FROM lc WHERE tag = 'b' GROUP BY tag")
            .unwrap();
        let m = db
            .query(
                "SELECT name, value FROM v_monitor.metrics \
                 WHERE name LIKE 'scan.encoded.%' ORDER BY name",
            )
            .unwrap()
            .batch;
        let total = |want: &str| -> f64 {
            (0..m.num_rows())
                .filter(|&r| matches!(&m.row(r)[0], Value::Varchar(n) if n == want))
                .map(|r| m.row(r)[1].as_f64().unwrap_or(0.0))
                .sum()
        };
        // The RLE predicate evaluated per run, not per row — the acceptance
        // criterion for compressed execution.
        assert!(
            total("scan.encoded.runs_skipped") > 0.0,
            "RLE predicate must skip per-row work: {m:?}"
        );
        assert!(
            total("scan.encoded.codes_tested") > 0.0,
            "dictionary predicate must test codes"
        );
        assert!(
            total("scan.encoded.late_materialized_rows") > 0.0,
            "surviving rows must late-materialize"
        );
    }

    #[test]
    fn planner_rule_picks_encoded_only_for_eligible_shapes() {
        let eligible = [
            "SELECT id FROM t WHERE grp = 1",
            "SELECT count(*) FROM t WHERE 1 <= grp AND tag = 'b'",
            "SELECT tag, count(*) FROM t GROUP BY tag",
        ];
        let ineligible = [
            // No WHERE, no GROUP BY: plain scans stay decoded (and keep
            // warming the decoded cache tier).
            "SELECT * FROM t",
            // Column-vs-column comparison.
            "SELECT id FROM t WHERE grp = id",
            // Arithmetic inside the comparison.
            "SELECT id FROM t WHERE grp + 1 = 2",
            // LIKE / IN need decoded values.
            "SELECT id FROM t WHERE tag LIKE 'a%'",
            "SELECT id FROM t WHERE grp IN (1, 2)",
        ];
        let as_select = |sql: &str| -> SelectStmt {
            match crate::sql::parse(sql).unwrap() {
                Statement::Select(s) => s,
                other => panic!("expected SELECT, got {other:?}"),
            }
        };
        for sql in eligible {
            assert!(encoded_execution_eligible(&as_select(sql)), "{sql}");
        }
        for sql in ineligible {
            assert!(!encoded_execution_eligible(&as_select(sql)), "{sql}");
        }
    }
}
