#![allow(clippy::needless_range_loop)] // numeric kernels index centers/rows by id on purpose
//! # vdr-sparksim — the Spark-on-HDFS comparator
//!
//! The paper's Section 7.3.2 baseline: "Spark provides a fast, in-memory
//! computation layer … Spark which is tightly integrated with HDFS, reads
//! the data directly from the local HDFS node and optionally deserializes
//! the data before converting into its own data-structures."
//!
//! * [`hdfs::HdfsSim`] — a block store with 3-way replication (the paper's
//!   default) and data-local reads.
//! * [`rdd::SparkContext`] / [`rdd::SparkMatrix`] — an RDD-style partitioned
//!   matrix loaded block-local from HDFS.
//! * [`mllib`] — the MLlib-like K-means. Its inner loop *is*
//!   `vdr_ml::kmeans::assign_partial`, making Figure 20 the apples-to-apples
//!   comparison the paper insists on ("Spark and DR denote the same
//!   implementation of the K-means algorithm").

pub mod hdfs;
pub mod mllib;
pub mod rdd;

pub use hdfs::HdfsSim;
pub use mllib::spark_kmeans;
pub use rdd::{SparkContext, SparkMatrix};

use vdr_cluster::{HardwareProfile, SimDuration};

/// Paper-scale analytic projection of a Spark HDFS load (Figure 21's "load
/// data from HDFS" bar): local block reads pipelined with per-value
/// deserialization into JVM objects.
pub fn model_spark_load(
    p: &HardwareProfile,
    rows: u64,
    cols: u64,
    raw_bytes: u64,
    nodes: usize,
    lanes: usize,
) -> SimDuration {
    let disk = SimDuration::from_secs(raw_bytes as f64 / (nodes as f64 * p.disk_read_bps));
    let deser = SimDuration::from_nanos((rows * cols) as f64 * p.costs.spark_load_ns_per_value)
        / (nodes as f64 * p.parallel_speedup(lanes));
    disk.max(deser)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig21_spark_load_about_11_minutes() {
        // 240M rows × 100 features ≈ 192 GB raw on 4 nodes.
        let p = HardwareProfile::paper_testbed();
        let t = model_spark_load(&p, 240_000_000, 100, 192_000_000_000, 4, 24);
        let mins = t.as_minutes();
        assert!(
            (9.0..14.0).contains(&mins),
            "Spark load ≈ {mins:.1} min (paper: 11)"
        );
    }

    #[test]
    fn spark_load_is_faster_than_vft_but_slower_than_local_ext4() {
        // The Figure 21 ordering: DR-disk < Spark-HDFS < Vertica-VFT.
        use vdr_transfer::model::{model_dr_disk, model_vft, ClusterShape, TableShape};
        let p = HardwareProfile::paper_testbed();
        let t = TableShape {
            rows: 240_000_000,
            cols: 100,
            disk_bytes: 192_000_000_000,
        };
        let shape = ClusterShape {
            db_nodes: 4,
            r_nodes: 4,
            r_instances_per_node: 24,
            colocated: false,
        };
        let spark = model_spark_load(&p, t.rows, t.cols, t.raw_bytes(), 4, 24);
        let vft = model_vft(&p, t, shape).total();
        let local = model_dr_disk(&p, t, shape).total();
        assert!(local < spark, "local {local} vs spark {spark}");
        assert!(spark < vft, "spark {spark} vs vft {vft}");
    }
}
