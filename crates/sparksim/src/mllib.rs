//! MLlib-style K-means over a [`SparkMatrix`].
//!
//! The per-partition kernel is literally `vdr_ml::kmeans::assign_partial` —
//! the same code the Distributed R implementation runs — so Figure 20
//! compares scheduling/runtime stacks, not algorithm variants.

use crate::rdd::SparkMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vdr_cluster::SimCluster;
use vdr_ml::kmeans::{assign_partial, merge_partials, KmeansPartial};
use vdr_ml::models::KmeansModel;
use vdr_ml::{MlError, Result};

/// Lloyd K-means with k-means‖-style D² seeding (what MLlib uses).
pub fn spark_kmeans(
    cluster: &SimCluster,
    matrix: &SparkMatrix,
    k: usize,
    max_iterations: usize,
    seed: u64,
) -> Result<KmeansModel> {
    let n = matrix.num_rows();
    if k == 0 || k > n {
        return Err(MlError::Invalid(format!("k={k} with n={n}")));
    }
    let d = matrix.cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let fetch = |global: usize| -> Vec<f64> {
        let mut remaining = global;
        for part in &matrix.partitions {
            if remaining < part.rows {
                return part.data[remaining * d..(remaining + 1) * d].to_vec();
            }
            remaining -= part.rows;
        }
        unreachable!("global row within bounds");
    };
    // D² sampling: each next center drawn proportional to squared distance
    // from the nearest existing center (computed distributed).
    let mut centers = vec![fetch(rng.gen_range(0..n))];
    while centers.len() < k {
        let weights: Vec<Vec<f64>> = matrix.map_partitions(cluster, |part| {
            part.data
                .chunks_exact(d)
                .map(|row| {
                    centers
                        .iter()
                        .map(|c| vdr_ml::linalg::squared_distance(row, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        });
        let total: f64 = weights.iter().flatten().sum();
        if total <= 0.0 {
            centers.push(centers[0].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut global = 0usize;
        'outer: for pw in &weights {
            for w in pw {
                target -= w;
                if target <= 0.0 {
                    break 'outer;
                }
                global += 1;
            }
        }
        centers.push(fetch(global.min(n - 1)));
    }
    spark_kmeans_with_centers(cluster, matrix, centers, max_iterations)
}

/// Lloyd iterations from explicit starting centers (used by tests to verify
/// the Spark and Distributed R paths converge identically from the same
/// start).
pub fn spark_kmeans_with_centers(
    cluster: &SimCluster,
    matrix: &SparkMatrix,
    centers: Vec<Vec<f64>>,
    max_iterations: usize,
) -> Result<KmeansModel> {
    let d = matrix.cols;
    let k = centers.len();
    if k == 0 {
        return Err(MlError::Invalid("no initial centers".into()));
    }
    // Same contiguous k×d center buffer as the Distributed R side.
    let mut centers: Vec<f64> = centers.into_iter().flatten().collect();
    let mut iterations = 0usize;
    let mut wss = f64::INFINITY;
    while iterations < max_iterations {
        iterations += 1;
        let partials: Vec<KmeansPartial> =
            matrix.map_partitions(cluster, |part| assign_partial(&part.data, d, &centers));
        let merged = vdr_ml::reduce::tree_merge(partials, |a, b| merge_partials(a, &b))
            .ok_or_else(|| MlError::Invalid("matrix has no partitions".into()))?;
        let mut moved = 0.0;
        for c in 0..k {
            if merged.counts[c] == 0 {
                continue; // MLlib keeps empty centers in place
            }
            let count = merged.counts[c] as f64;
            let center: Vec<f64> = merged.sums[c * d..(c + 1) * d]
                .iter()
                .map(|s| s / count)
                .collect();
            moved += vdr_ml::linalg::squared_distance(&center, &centers[c * d..(c + 1) * d]);
            centers[c * d..(c + 1) * d].copy_from_slice(&center);
        }
        wss = merged.wss;
        if moved <= 1e-9 {
            break;
        }
    }
    Ok(KmeansModel {
        centers: centers.chunks_exact(d).map(<[f64]>::to_vec).collect(),
        iterations,
        total_withinss: wss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdfs::HdfsSim;
    use crate::rdd::SparkContext;
    use std::sync::Arc;
    use vdr_cluster::Ledger;
    use vdr_ml::serial::serial_kmeans;

    fn blob_data(seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (12.0, 12.0), (-12.0, 12.0)] {
            for _ in 0..120 {
                data.push(cx + rng.gen_range(-0.4..0.4));
                data.push(cy + rng.gen_range(-0.4..0.4));
            }
        }
        data
    }

    fn load(cluster: &SimCluster, data: &[f64]) -> SparkMatrix {
        let hdfs = Arc::new(HdfsSim::new(cluster.clone(), 3));
        hdfs.put_matrix("pts", data, 2, 40);
        let sc = SparkContext::new(cluster.clone(), hdfs, 2);
        sc.load_matrix("pts", &Ledger::new()).unwrap().0
    }

    #[test]
    fn finds_the_blobs() {
        let cluster = SimCluster::for_tests(3);
        let data = blob_data(4);
        let m = load(&cluster, &data);
        let model = spark_kmeans(&cluster, &m, 3, 50, 99).unwrap();
        for expect in [[0.0, 0.0], [12.0, 12.0], [-12.0, 12.0]] {
            let nearest = model
                .centers
                .iter()
                .map(|c| vdr_ml::linalg::squared_distance(c, &expect))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.05, "{:?}", model.centers);
        }
    }

    #[test]
    fn identical_kernel_to_serial_reference_from_same_start() {
        // Apples-to-apples check: Lloyd from the same initial centers must
        // yield identical centers whether run by the Spark comparator or the
        // serial reference (both call the shared kernel).
        let cluster = SimCluster::for_tests(2);
        let data = blob_data(8);
        let m = load(&cluster, &data);
        let init = vec![vec![1.0, 1.0], vec![10.0, 10.0], vec![-10.0, 10.0]];
        let spark = spark_kmeans_with_centers(&cluster, &m, init.clone(), 30).unwrap();
        // Serial reference: run Lloyd by hand with the shared kernel.
        let mut centers: Vec<f64> = init.into_iter().flatten().collect();
        for _ in 0..30 {
            let p = assign_partial(&data, 2, &centers);
            let mut moved = 0.0;
            for c in 0..3 {
                if p.counts[c] == 0 {
                    continue;
                }
                let count = p.counts[c] as f64;
                let nc: Vec<f64> = p.sums[c * 2..(c + 1) * 2]
                    .iter()
                    .map(|s| s / count)
                    .collect();
                moved += vdr_ml::linalg::squared_distance(&nc, &centers[c * 2..(c + 1) * 2]);
                centers[c * 2..(c + 1) * 2].copy_from_slice(&nc);
            }
            if moved <= 1e-9 {
                break;
            }
        }
        for (a, b) in spark.centers.iter().zip(centers.chunks_exact(2)) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "{:?} vs {centers:?}", spark.centers);
            }
        }
        // The serial baseline also runs to a finite optimum on this data
        // (random init may merge blobs — a Lloyd local optimum — so only
        // sanity-check the result, not its quality).
        let reference = serial_kmeans(&data, 2, 3, 50, 5).unwrap();
        assert!(reference.total_withinss.is_finite());
        assert_eq!(reference.centers.len(), 3);
    }

    #[test]
    fn validations() {
        let cluster = SimCluster::for_tests(2);
        let data = blob_data(1);
        let m = load(&cluster, &data);
        assert!(spark_kmeans(&cluster, &m, 0, 10, 1).is_err());
        assert!(spark_kmeans(&cluster, &m, 100_000, 10, 1).is_err());
        assert!(spark_kmeans_with_centers(&cluster, &m, vec![], 10).is_err());
    }
}
