//! HDFS simulator: fixed-size blocks with k-way replication and data-local
//! reads ("HDFS is set to the default 3-way data replication", Section 7).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use vdr_cluster::{NodeId, PhaseRecorder, SimCluster};

/// Metadata of one stored block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    pub index: usize,
    /// First replica — the "local" node an RDD partition prefers.
    pub primary: NodeId,
    pub replicas: Vec<NodeId>,
    pub rows: usize,
    pub bytes: u64,
}

#[derive(Debug, Clone)]
struct FileMeta {
    blocks: Vec<BlockMeta>,
    cols: usize,
}

/// A cluster-wide block store holding CSV-encoded matrices.
pub struct HdfsSim {
    cluster: SimCluster,
    replication: usize,
    files: RwLock<BTreeMap<String, FileMeta>>,
}

impl HdfsSim {
    pub fn new(cluster: SimCluster, replication: usize) -> Self {
        let replication = replication.clamp(1, cluster.num_nodes());
        HdfsSim {
            cluster,
            replication,
            files: RwLock::new(BTreeMap::new()),
        }
    }

    pub fn replication(&self) -> usize {
        self.replication
    }

    fn block_path(name: &str, index: usize) -> String {
        format!("hdfs/{name}/blk{index:06}")
    }

    /// Store a row-major matrix as CSV text blocks of `block_rows` rows,
    /// placed round-robin with `replication` copies. This is ingestion
    /// (ETL), not part of measured loads.
    pub fn put_matrix(&self, name: &str, data: &[f64], cols: usize, block_rows: usize) {
        assert!(cols > 0 && block_rows > 0, "bad block shape");
        assert_eq!(data.len() % cols, 0, "data not rectangular");
        let n = self.cluster.num_nodes();
        let mut blocks = Vec::new();
        for (index, chunk) in data.chunks(block_rows * cols).enumerate() {
            let mut text = String::with_capacity(chunk.len() * 8);
            for row in chunk.chunks(cols) {
                for (i, v) in row.iter().enumerate() {
                    if i > 0 {
                        text.push(',');
                    }
                    text.push_str(&v.to_string());
                }
                text.push('\n');
            }
            let bytes = bytes::Bytes::from(text);
            let primary = NodeId(index % n);
            let replicas: Vec<NodeId> = (0..self.replication)
                .map(|r| NodeId((index + r) % n))
                .collect();
            for &node in &replicas {
                self.cluster
                    .node(node)
                    .disk()
                    .write(Self::block_path(name, index), bytes.clone());
            }
            blocks.push(BlockMeta {
                index,
                primary,
                replicas,
                rows: chunk.len() / cols,
                bytes: bytes.len() as u64,
            });
        }
        self.files
            .write()
            .insert(name.to_string(), FileMeta { blocks, cols });
    }

    /// All block metadata for `name`.
    pub fn blocks_of(&self, name: &str) -> Vec<BlockMeta> {
        self.files
            .read()
            .get(name)
            .map(|f| f.blocks.clone())
            .unwrap_or_default()
    }

    /// Column count of a stored matrix.
    pub fn cols_of(&self, name: &str) -> Option<usize> {
        self.files.read().get(name).map(|f| f.cols)
    }

    /// Read one block from `reader`'s point of view: free-of-network if a
    /// replica is local, else fetched from the primary.
    pub fn read_block(
        &self,
        name: &str,
        block: &BlockMeta,
        reader: NodeId,
        rec: &PhaseRecorder,
    ) -> Option<bytes::Bytes> {
        let source = if block.replicas.contains(&reader) {
            reader
        } else {
            block.primary
        };
        let data = self
            .cluster
            .node(source)
            .disk()
            .read(&Self::block_path(name, block.index))
            .ok()?;
        rec.disk_read(source, block.bytes);
        rec.net(source, reader, block.bytes);
        Some(data)
    }

    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdr_cluster::PhaseKind;

    fn setup() -> (SimCluster, HdfsSim) {
        let cluster = SimCluster::for_tests(4);
        let hdfs = HdfsSim::new(cluster.clone(), 3);
        (cluster, hdfs)
    }

    #[test]
    fn blocks_are_replicated_three_ways() {
        let (_, hdfs) = setup();
        let data: Vec<f64> = (0..120).map(|i| i as f64).collect();
        hdfs.put_matrix("m", &data, 3, 10); // 40 rows → 4 blocks of 10
        let blocks = hdfs.blocks_of("m");
        assert_eq!(blocks.len(), 4);
        for b in &blocks {
            assert_eq!(b.replicas.len(), 3);
            assert_eq!(b.rows, 10);
            assert_eq!(b.replicas[0], b.primary);
        }
        // Primaries round-robin across nodes.
        assert_eq!(blocks[0].primary, NodeId(0));
        assert_eq!(blocks[3].primary, NodeId(3));
        assert_eq!(hdfs.cols_of("m"), Some(3));
        assert!(hdfs.exists("m"));
        assert!(!hdfs.exists("nope"));
    }

    #[test]
    fn local_reads_skip_the_network() {
        let (cluster, hdfs) = setup();
        hdfs.put_matrix("m", &[1.0, 2.0, 3.0, 4.0], 2, 2);
        let blocks = hdfs.blocks_of("m");
        let rec = PhaseRecorder::new("r", PhaseKind::Sequential, 4);
        // Primary node reads locally.
        let b = hdfs
            .read_block("m", &blocks[0], blocks[0].primary, &rec)
            .unwrap();
        assert!(!b.is_empty());
        let report = rec.finish(cluster.profile());
        assert_eq!(report.total_bytes_moved, 0);
        assert!(report.total_disk_read > 0);
    }

    #[test]
    fn remote_reads_fetch_from_primary() {
        let (cluster, hdfs) = setup();
        hdfs.put_matrix("m", &[1.0; 30], 1, 30); // one block on node 0..2
        let blocks = hdfs.blocks_of("m");
        let rec = PhaseRecorder::new("r", PhaseKind::Sequential, 4);
        // Node 3 holds no replica of block 0 (replicas are 0,1,2).
        hdfs.read_block("m", &blocks[0], NodeId(3), &rec).unwrap();
        let report = rec.finish(cluster.profile());
        assert!(report.total_bytes_moved > 0);
    }

    #[test]
    fn replication_clamped() {
        let cluster = SimCluster::for_tests(2);
        let hdfs = HdfsSim::new(cluster, 3);
        assert_eq!(hdfs.replication(), 2);
    }
}
