//! An RDD-style in-memory partitioned matrix, loaded data-locally from the
//! HDFS simulator.

use crate::hdfs::HdfsSim;
use std::sync::Arc;
use vdr_cluster::{Ledger, NodeId, PhaseKind, PhaseRecorder, SimCluster, SimDuration};

/// The driver: loads files into partitioned in-memory matrices.
pub struct SparkContext {
    cluster: SimCluster,
    hdfs: Arc<HdfsSim>,
    /// Executor threads per node (Spark cores).
    executor_lanes: usize,
}

/// One in-memory partition: rows held by one executor.
pub struct SparkPartition {
    pub node: NodeId,
    pub rows: usize,
    pub cols: usize,
    /// Row-major values.
    pub data: Vec<f64>,
}

/// A partitioned dense matrix (the RDD the K-means job iterates over).
pub struct SparkMatrix {
    pub cols: usize,
    pub partitions: Vec<SparkPartition>,
}

impl SparkContext {
    pub fn new(cluster: SimCluster, hdfs: Arc<HdfsSim>, executor_lanes: usize) -> Self {
        SparkContext {
            cluster,
            hdfs,
            executor_lanes,
        }
    }

    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    pub fn executor_lanes(&self) -> usize {
        self.executor_lanes
    }

    /// Load `name` into memory: each node reads and parses the blocks whose
    /// primary replica it holds (HDFS data locality — "Spark … reads the
    /// data directly from the local HDFS node"). Charges one pipelined
    /// "spark load" phase to `ledger` and returns the load's simulated time.
    pub fn load_matrix(&self, name: &str, ledger: &Ledger) -> Option<(SparkMatrix, SimDuration)> {
        let cols = self.hdfs.cols_of(name)?;
        let blocks = self.hdfs.blocks_of(name);
        let rec = PhaseRecorder::new("spark load", PhaseKind::Pipelined, self.cluster.num_nodes());
        let deser_cost = self.cluster.profile().costs.spark_load_ns_per_value;

        let partitions: Vec<SparkPartition> = self
            .cluster
            .scatter(|node| {
                let my_blocks: Vec<_> = blocks.iter().filter(|b| b.primary == node.id()).collect();
                rec.set_lanes(node.id(), self.executor_lanes);
                node.run(|| {
                    let mut data = Vec::new();
                    let mut rows = 0usize;
                    for b in my_blocks {
                        let Some(bytes) = self.hdfs.read_block(name, b, node.id(), &rec) else {
                            continue;
                        };
                        let text = std::str::from_utf8(&bytes).expect("hdfs blocks are utf8 csv");
                        for line in text.lines() {
                            for field in line.split(',') {
                                data.push(field.parse::<f64>().unwrap_or(f64::NAN));
                            }
                            rows += 1;
                        }
                        rec.cpu_work(node.id(), (b.rows * cols) as f64, deser_cost);
                    }
                    SparkPartition {
                        node: node.id(),
                        rows,
                        cols,
                        data,
                    }
                })
            })
            .into_iter()
            .filter(|p| p.rows > 0)
            .collect();

        let report = rec.finish(self.cluster.profile());
        let load_time = report.duration();
        ledger.push(report);
        Some((SparkMatrix { cols, partitions }, load_time))
    }
}

impl SparkMatrix {
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.rows).sum()
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Map-reduce over partitions: `map` runs on each partition's node in
    /// parallel; results are folded on the driver.
    pub fn map_partitions<R: Send>(
        &self,
        cluster: &SimCluster,
        map: impl Fn(&SparkPartition) -> R + Sync,
    ) -> Vec<R> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .partitions
                .iter()
                .map(|part| {
                    let node = cluster.node(part.node).clone();
                    let map = &map;
                    scope.spawn(move || node.run(|| map(part)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_data_local_and_complete() {
        let cluster = SimCluster::for_tests(3);
        let hdfs = Arc::new(HdfsSim::new(cluster.clone(), 3));
        let data: Vec<f64> = (0..300).map(|i| i as f64 * 0.5).collect();
        hdfs.put_matrix("m", &data, 2, 25); // 150 rows → 6 blocks
        let sc = SparkContext::new(cluster.clone(), hdfs, 4);
        let ledger = Ledger::new();
        let (m, load_time) = sc.load_matrix("m", &ledger).unwrap();
        assert_eq!(m.num_rows(), 150);
        assert_eq!(m.cols, 2);
        assert!(load_time.as_secs() > 0.0);
        // Every partition's data parses back to what was written.
        let sums = m.map_partitions(&cluster, |p| p.data.iter().sum::<f64>());
        let total: f64 = sums.iter().sum();
        assert_eq!(total, data.iter().sum::<f64>());
        // Data locality: reads on each node came off its own disk — the
        // phase moved no bytes over the network.
        let report = &ledger.reports()[0];
        assert_eq!(report.total_bytes_moved, 0, "HDFS load must be node-local");
        assert!(sc.executor_lanes() == 4);
    }

    #[test]
    fn missing_file_is_none() {
        let cluster = SimCluster::for_tests(2);
        let hdfs = Arc::new(HdfsSim::new(cluster.clone(), 2));
        let sc = SparkContext::new(cluster, hdfs, 2);
        assert!(sc.load_matrix("nope", &Ledger::new()).is_none());
    }
}
