//! Train-while-loading: distributed model creation that starts *during* the
//! VFT transfer — the paper's "fast data transfer" and "distributed model
//! creation" halves composed end to end instead of run back to back.
//!
//! [`FastTransfer::db2darray_observed`] invokes a [`BatchObserver`] on every
//! decoded block inside the worker receive pools. The functions here use
//! that hook to fold iteration-0 training statistics while the export query
//! is still producing:
//!
//! * **GLM / IRLS** — each arriving batch contributes its share of the
//!   normal equations `XᵀWX β = XᵀWz` at the starting coefficients
//!   ([`vdr_ml::glm::accumulate_rows`]). Partials merge by addition, so
//!   stream arrival order doesn't matter. After the transfer the merged
//!   system is solved once and [`vdr_ml::glm::hpdglm`] resumes from that β:
//!   the first Newton iteration rode along with the load.
//! * **GLM / SGD** — each worker keeps a running model and takes sequential
//!   minibatch steps over every batch it receives ([`vdr_ml::glm::sgd_rows`],
//!   the Bismarck incremental scheme). After the load the per-worker models
//!   are row-weighted-averaged and `hpdglm` continues its remaining epochs
//!   from there.
//! * **K-means** — arriving batches are scored against the caller's initial
//!   centers ([`vdr_ml::kmeans::assign_partial`]); the merged partial yields
//!   the iteration-1 centers and [`vdr_ml::kmeans::hpdkmeans`] warm-starts
//!   from them.
//!
//! The wall-clock time spent inside the callbacks — training work hidden
//! under the transfer — is returned as `overlap_ns` and recorded on the
//! `ml.train.overlap_ns` counter, attributed to the same query id as the
//! transfer's `vft.*` metrics (so `PROFILE` shows load and training as one
//! query). The part of the export that could *not* be covered stays visible
//! through the existing [`TransferReport::queue_time`] plumbing.

use crate::report::TransferReport;
use crate::vft::{BatchObserver, FastTransfer, TransferPolicy};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vdr_cluster::Ledger;
use vdr_distr::{DArray, DistributedR};
use vdr_ml::glm::{accumulate_rows, hpdglm, sgd_rows, Family, GlmOptions, GlmPartials, GlmSolver};
use vdr_ml::kmeans::{assign_partial, hpdkmeans, merge_partials, KmeansOptions, KmeansPartial};
use vdr_ml::models::{GlmModel, KmeansModel};
use vdr_verticadb::{DbError, Result, VerticaDb};

fn exec<E: std::fmt::Display>(e: E) -> DbError {
    DbError::Exec(e.to_string())
}

/// Enter (or inherit) one query scope for the whole load-and-train, so the
/// `ml.train.*` metrics land on the same `PROFILE` row as the `vft.*` ones.
fn train_query_scope() -> vdr_obs::QueryScope {
    let query_id = match vdr_obs::current_query_id() {
        0 => vdr_obs::next_query_id(),
        id => id,
    };
    vdr_obs::QueryScope::enter(query_id)
}

/// Attribution bracket around one load-and-train: snapshots metrics on open
/// and, on [`TrainAttribution::finish`], records the run into the database's
/// query history so `v_monitor.query_requests` lists it and
/// [`vdr_verticadb::monitor::profile_batch`] attributes its `ml.train.*` /
/// `vft.*` metric deltas to the train query id, like `PROFILE` does for SQL
/// statements.
struct TrainAttribution {
    query_id: u64,
    label: String,
    started: Instant,
    before: Option<vdr_obs::MetricsSnapshot>,
}

impl TrainAttribution {
    fn open(label: String) -> Self {
        TrainAttribution {
            query_id: vdr_obs::current_query_id(),
            label,
            started: Instant::now(),
            // Mirror the tracked SQL path: with recording off nothing moves
            // between the snapshots, so skip the capture entirely.
            before: vdr_obs::Verbosity::current()
                .recording()
                .then(|| vdr_obs::global().metrics().snapshot()),
        }
    }

    fn finish(self, db: &VerticaDb, report: &TransferReport) {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let recording = self.before.is_some();
        if recording {
            vdr_obs::observe("query.wall_us", wall_ns as f64 / 1e3);
        }
        let after = recording.then(|| vdr_obs::global().metrics().snapshot());
        let metrics_delta = match (&after, self.before) {
            (Some(after), Some(before)) => after.diff(&before),
            _ => Default::default(),
        };
        // Train-pool completion is a data-collector tick of its own: the
        // transfer inside ticked with trigger "vft" and carried the per-node
        // pool usage, so this tick contributes the train-level rollup plus an
        // initiator-lane sample holding the `ml.train.*` deltas (they are
        // recorded without a node label and would otherwise never land in a
        // ring).
        let dc = vdr_obs::global().dc();
        if dc.sampling() {
            let cache = db.storage().block_cache();
            dc.tick(vdr_obs::TickContext {
                query_id: self.query_id,
                trigger: "train",
                label: self.label.clone(),
                status: "complete".to_string(),
                rows: report.rows,
                bytes: report.bytes,
                sim_secs: report.total().as_secs(),
                wall_ns,
                delta: metrics_delta.clone(),
                latency: after
                    .as_ref()
                    .and_then(|snap| snap.histogram_total("query.wall_us")),
                usage: vec![vdr_obs::TickUsage {
                    node: 0,
                    sim_secs: report.total().as_secs(),
                    cpu_core_ns: 0.0,
                    disk_read_bytes: 0,
                    disk_write_bytes: 0,
                    net_in_bytes: 0,
                    net_out_bytes: 0,
                    cache_bytes: cache.bytes_on(vdr_cluster::NodeId(0)),
                }],
            });
        }
        db.monitor().history().record(vdr_verticadb::QueryRecord {
            id: self.query_id,
            sql: self.label,
            status: "complete".to_string(),
            sim_secs: report.total().as_secs(),
            wall_ns,
            rows: report.rows,
            bytes: report.bytes,
            phases: Vec::new(),
            metrics_delta,
        });
    }
}

/// A GLM fitted while its data loaded.
pub struct GlmLoadFit {
    pub model: GlmModel,
    pub x: DArray,
    pub y: DArray,
    pub report: TransferReport,
    /// Query id the whole load-and-train ran under (shared with the
    /// transfer's `vft.*` metrics; keyed into `v_monitor.query_requests`).
    pub query_id: u64,
    /// Wall-clock nanoseconds of training work folded into the receive
    /// pools while the export was still running (also recorded on the
    /// `ml.train.overlap_ns` counter).
    pub overlap_ns: u64,
}

/// Per-solver accumulator the receive pools fold into.
enum Fold {
    /// Iteration-0 normal equations at the starting coefficients.
    Irls {
        beta0: Vec<f64>,
        partials: Mutex<GlmPartials>,
    },
    /// One running (model, rows-seen) per worker: Bismarck-style sequential
    /// updates within a worker, averaged across workers after the load.
    Sgd {
        workers: Vec<Mutex<(Vec<f64>, u64)>>,
        step: f64,
        minibatch: usize,
    },
}

/// Fit `hpdglm(y ~ x_features)` on `table`, starting the training during the
/// transfer itself: iteration-0 statistics (IRLS) or streaming minibatch
/// updates (SGD) are folded on each block as the receive pools decode it,
/// and the post-load fit resumes from the resulting warm start.
#[allow(clippy::too_many_arguments)]
pub fn glm_while_loading(
    vft: &FastTransfer,
    db: &VerticaDb,
    dr: &DistributedR,
    table: &str,
    x_features: &[&str],
    y_feature: &str,
    family: Family,
    opts: &GlmOptions,
    policy: TransferPolicy,
    ledger: &Ledger,
) -> Result<GlmLoadFit> {
    let d = x_features.len();
    if d == 0 {
        return Err(DbError::Plan("no feature columns requested".into()));
    }
    if opts.initial_beta.is_some() {
        return Err(DbError::Plan(
            "glm_while_loading computes its own warm start; leave initial_beta unset".into(),
        ));
    }
    let p = d + usize::from(opts.add_intercept);
    let _scope = train_query_scope();
    let attribution = TrainAttribution::open(format!("TRAIN GLM WHILE LOADING {table}"));

    let state = Arc::new(match opts.solver {
        GlmSolver::Irls => Fold::Irls {
            beta0: vec![0.0; p],
            partials: Mutex::new(GlmPartials::zeros(p)),
        },
        GlmSolver::Sgd {
            learning_rate,
            epochs,
            minibatch,
        } => {
            if learning_rate <= 0.0 || epochs == 0 {
                return Err(DbError::Plan(
                    "sgd needs learning_rate > 0 and epochs > 0".into(),
                ));
            }
            Fold::Sgd {
                workers: (0..dr.num_workers())
                    .map(|_| Mutex::new((vec![0.0; p], 0)))
                    .collect(),
                step: learning_rate,
                minibatch,
            }
        }
    });
    let overlap = Arc::new(AtomicU64::new(0));
    let observer: BatchObserver = {
        let state = Arc::clone(&state);
        let overlap = Arc::clone(&overlap);
        let intercept = opts.add_intercept;
        Arc::new(move |w, _src, _inst, batch| {
            let t = Instant::now();
            let Ok(rows) = crate::batch_to_f64_rows(batch) else {
                return;
            };
            // The block carries [X | y]: peel the response off each row.
            let nrow = batch.num_rows();
            let mut xb = Vec::with_capacity(nrow * d);
            let mut yb = Vec::with_capacity(nrow);
            for row in rows.chunks_exact(d + 1) {
                xb.extend_from_slice(&row[..d]);
                yb.push(row[d]);
            }
            match &*state {
                Fold::Irls { beta0, partials } => {
                    let part = accumulate_rows(&xb, &yb, d, beta0, family, intercept);
                    partials.lock().merge(&part);
                }
                Fold::Sgd {
                    workers,
                    step,
                    minibatch,
                } => {
                    let mut slot = workers[w].lock();
                    slot.0 = sgd_rows(&xb, &yb, d, &slot.0, family, intercept, *step, *minibatch);
                    slot.1 += nrow as u64;
                }
            }
            overlap.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        })
    };

    let mut columns = x_features.to_vec();
    columns.push(y_feature);
    let (xy, report) = vft.db2darray_observed(db, dr, table, &columns, policy, ledger, observer)?;
    let overlap_ns = overlap.load(Ordering::Relaxed);
    vdr_obs::counter("ml.train.overlap_ns", overlap_ns);

    let (x, y) = split_xy(dr, &xy, d)?;
    let mut fit_opts = opts.clone();
    fit_opts.initial_beta = match &*state {
        Fold::Irls { partials, .. } => {
            let merged = partials.lock();
            // A singular or under-determined system just means no warm
            // start — the staged path from scratch still runs.
            if merged.rows >= p as u64 {
                merged.solve().ok()
            } else {
                None
            }
        }
        Fold::Sgd { workers, .. } => {
            let mut avg = vec![0.0; p];
            let mut total = 0u64;
            for slot in workers {
                let (model, rows) = &*slot.lock();
                if *rows > 0 {
                    vdr_ml::linalg::axpy(*rows as f64, model, &mut avg);
                    total += rows;
                }
            }
            (total > 0).then(|| {
                for a in avg.iter_mut() {
                    *a /= total as f64;
                }
                avg
            })
        }
    };
    let model = hpdglm(&x, &y, family, &fit_opts).map_err(exec)?;
    let query_id = attribution.query_id;
    attribution.finish(db, &report);
    Ok(GlmLoadFit {
        model,
        x,
        y,
        report,
        query_id,
        overlap_ns,
    })
}

/// Split a combined `[X | y]` darray (`d + 1` columns) into co-partitioned
/// feature and response arrays on the same workers.
fn split_xy(dr: &DistributedR, xy: &DArray, d: usize) -> Result<(DArray, DArray)> {
    let nparts = xy.npartitions();
    let x = dr.darray(nparts).map_err(exec)?;
    let y = dr.darray(nparts).map_err(exec)?;
    let parts = xy
        .map_partitions(|p, part| {
            let mut xd = Vec::with_capacity(part.nrow * d);
            let mut yd = Vec::with_capacity(part.nrow);
            for row in part.data.chunks_exact(d + 1) {
                xd.extend_from_slice(&row[..d]);
                yd.push(row[d]);
            }
            (p, part.nrow, xd, yd)
        })
        .map_err(exec)?;
    for (p, nrow, xd, yd) in parts {
        let w = xy.worker_of(p).map_err(exec)?;
        x.fill_partition_on(w, p, nrow, d, xd).map_err(exec)?;
        y.fill_partition_on(w, p, nrow, 1, yd).map_err(exec)?;
    }
    Ok((x, y))
}

/// A K-means model fitted while its data loaded.
pub struct KmeansLoadFit {
    pub model: KmeansModel,
    pub x: DArray,
    pub report: TransferReport,
    /// Query id the whole load-and-train ran under (shared with the
    /// transfer's `vft.*` metrics; keyed into `v_monitor.query_requests`).
    pub query_id: u64,
    /// Wall-clock nanoseconds of assignment work folded into the receive
    /// pools while the export was still running (also recorded on the
    /// `ml.train.overlap_ns` counter).
    pub overlap_ns: u64,
}

/// Cluster `table`'s feature columns, running the first Lloyd assignment
/// pass against `opts.initial_centers` *during* the transfer and
/// warm-starting [`hpdkmeans`] from the resulting iteration-1 centers.
///
/// `initial_centers` is required: scoring starts before the data is
/// complete, so centers cannot be sampled from it.
#[allow(clippy::too_many_arguments)]
pub fn kmeans_while_loading(
    vft: &FastTransfer,
    db: &VerticaDb,
    dr: &DistributedR,
    table: &str,
    features: &[&str],
    opts: &KmeansOptions,
    policy: TransferPolicy,
    ledger: &Ledger,
) -> Result<KmeansLoadFit> {
    let d = features.len();
    if d == 0 {
        return Err(DbError::Plan("no feature columns requested".into()));
    }
    let Some(init) = opts.initial_centers.clone() else {
        return Err(DbError::Plan(
            "kmeans_while_loading needs opts.initial_centers: scoring starts before \
             the data is complete, so centers cannot be sampled from it"
                .into(),
        ));
    };
    if init.len() != opts.k * d {
        return Err(DbError::Plan(format!(
            "initial_centers must be k×d = {}, got {}",
            opts.k * d,
            init.len()
        )));
    }
    let _scope = train_query_scope();
    let attribution = TrainAttribution::open(format!("TRAIN KMEANS WHILE LOADING {table}"));

    let partial = Arc::new(Mutex::new(KmeansPartial::zeros(opts.k, d)));
    let overlap = Arc::new(AtomicU64::new(0));
    let observer: BatchObserver = {
        let partial = Arc::clone(&partial);
        let overlap = Arc::clone(&overlap);
        let centers = init.clone();
        Arc::new(move |_w, _src, _inst, batch| {
            let t = Instant::now();
            let Ok(rows) = crate::batch_to_f64_rows(batch) else {
                return;
            };
            let part = assign_partial(&rows, d, &centers);
            merge_partials(&mut partial.lock(), &part);
            overlap.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        })
    };

    let (x, report) = vft.db2darray_observed(db, dr, table, features, policy, ledger, observer)?;
    let overlap_ns = overlap.load(Ordering::Relaxed);
    vdr_obs::counter("ml.train.overlap_ns", overlap_ns);

    // Iteration-1 centers from the statistics folded during the load. A
    // center that saw no rows keeps its initial position (hpdkmeans reseeds
    // it if it stays empty).
    let mut centers = init;
    {
        let merged = partial.lock();
        for c in 0..opts.k {
            if merged.counts[c] > 0 {
                let n = merged.counts[c] as f64;
                for (cj, s) in centers[c * d..(c + 1) * d]
                    .iter_mut()
                    .zip(&merged.sums[c * d..(c + 1) * d])
                {
                    *cj = s / n;
                }
            }
        }
    }
    let mut fit_opts = opts.clone();
    fit_opts.initial_centers = Some(centers);
    // One Lloyd iteration already happened under the transfer.
    fit_opts.max_iterations = opts.max_iterations.saturating_sub(1).max(1);
    let model = hpdkmeans(&x, &fit_opts).map_err(exec)?;
    let query_id = attribution.query_id;
    attribution.finish(db, &report);
    Ok(KmeansLoadFit {
        model,
        x,
        report,
        query_id,
        overlap_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vft::install_export_function;
    use vdr_cluster::SimCluster;
    use vdr_columnar::{Batch, Column, DataType, Schema};
    use vdr_verticadb::{Segmentation, TableDef};

    /// Deterministic pseudo-uniform in [0, 1) from a row index (splitmix64,
    /// so streams with different salts are decorrelated).
    fn unit(i: i64, salt: u64) -> f64 {
        let mut z = (i as u64).wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A regression table: f0, f1 features plus gaussian and binomial
    /// responses around known coefficients (the paper's validation
    /// methodology — generate data from coefficients you expect back).
    fn regression_db(nodes: usize, rows: i64) -> (Arc<VerticaDb>, DistributedR, FastTransfer) {
        let cluster = SimCluster::for_tests(nodes);
        let db = VerticaDb::new(cluster.clone());
        let schema = Schema::of(&[
            ("f0", DataType::Float64),
            ("f1", DataType::Float64),
            ("y_gauss", DataType::Float64),
            ("y_logit", DataType::Float64),
        ]);
        db.create_table(TableDef {
            name: "train".into(),
            schema: schema.clone(),
            segmentation: Segmentation::RoundRobin,
        })
        .unwrap();
        let chunk = (rows / 4).max(1);
        let mut start = 0i64;
        while start < rows {
            let end = (start + chunk).min(rows);
            let idx: Vec<i64> = (start..end).collect();
            let f0: Vec<f64> = idx.iter().map(|&i| 4.0 * unit(i, 1) - 2.0).collect();
            let f1: Vec<f64> = idx.iter().map(|&i| 4.0 * unit(i, 2) - 2.0).collect();
            let yg: Vec<f64> = f0
                .iter()
                .zip(&f1)
                .map(|(a, b)| 2.0 + 1.5 * a - 0.5 * b)
                .collect();
            let yl: Vec<f64> = idx
                .iter()
                .zip(f0.iter().zip(&f1))
                .map(|(&i, (a, b))| {
                    let eta = 0.4 + 1.2 * a - 0.8 * b;
                    let p = 1.0 / (1.0 + (-eta).exp());
                    f64::from(unit(i, 3) < p)
                })
                .collect();
            let batch = Batch::new(
                schema.clone(),
                vec![
                    Column::from_f64(f0),
                    Column::from_f64(f1),
                    Column::from_f64(yg),
                    Column::from_f64(yl),
                ],
            )
            .unwrap();
            db.copy("train", vec![batch]).unwrap();
            start = end;
        }
        let dr = DistributedR::on_all_nodes(cluster, 2).unwrap();
        let vft = install_export_function(&db);
        (db, dr, vft)
    }

    /// Three deterministic 2-D blobs for the k-means path.
    fn blobs_db(nodes: usize, rows: i64) -> (Arc<VerticaDb>, DistributedR, FastTransfer) {
        let cluster = SimCluster::for_tests(nodes);
        let db = VerticaDb::new(cluster.clone());
        let schema = Schema::of(&[("px", DataType::Float64), ("py", DataType::Float64)]);
        db.create_table(TableDef {
            name: "pts".into(),
            schema: schema.clone(),
            segmentation: Segmentation::RoundRobin,
        })
        .unwrap();
        let centers = [(0.0, 0.0), (12.0, 12.0), (-12.0, 10.0)];
        let chunk = (rows / 4).max(1);
        let mut start = 0i64;
        while start < rows {
            let end = (start + chunk).min(rows);
            let mut px = Vec::new();
            let mut py = Vec::new();
            for i in start..end {
                let (cx, cy) = centers[(i % 3) as usize];
                px.push(cx + unit(i, 7) - 0.5);
                py.push(cy + unit(i, 8) - 0.5);
            }
            let batch = Batch::new(
                schema.clone(),
                vec![Column::from_f64(px), Column::from_f64(py)],
            )
            .unwrap();
            db.copy("pts", vec![batch]).unwrap();
            start = end;
        }
        let dr = DistributedR::on_all_nodes(cluster, 2).unwrap();
        let vft = install_export_function(&db);
        (db, dr, vft)
    }

    #[test]
    fn pipelined_glm_matches_staged_fit() {
        // Mirror of the transfer crate's pipelined-vs-staged equivalence
        // test, for training: fitting while loading must produce the same
        // model as loading first and fitting after.
        let (db, dr, vft) = regression_db(3, 3000);
        let ledger = Ledger::new();
        for (y_col, family, tol) in [
            ("y_gauss", Family::Gaussian, 1e-9),
            ("y_logit", Family::Binomial, 1e-6),
        ] {
            let opts = GlmOptions {
                tolerance: 1e-12,
                max_iterations: 60,
                ..Default::default()
            };
            let fit = glm_while_loading(
                &vft,
                &db,
                &dr,
                "train",
                &["f0", "f1"],
                y_col,
                family,
                &opts,
                TransferPolicy::Locality,
                &ledger,
            )
            .unwrap();
            assert_eq!(fit.report.rows, 3000);
            assert!(fit.model.converged);
            assert!(
                fit.overlap_ns > 0,
                "iteration-0 work must overlap the transfer"
            );
            // Staged reference: same data (the arrays the fit returned),
            // trained from scratch after the load.
            let staged = hpdglm(&fit.x, &fit.y, family, &opts).unwrap();
            for (a, b) in fit.model.coefficients.iter().zip(&staged.coefficients) {
                assert!(
                    (a - b).abs() < tol * b.abs().max(1.0),
                    "{family:?}: {:?} vs {:?}",
                    fit.model.coefficients,
                    staged.coefficients
                );
            }
        }
    }

    #[test]
    fn pipelined_gaussian_recovers_exact_coefficients() {
        let (db, dr, vft) = regression_db(2, 2000);
        let fit = glm_while_loading(
            &vft,
            &db,
            &dr,
            "train",
            &["f0", "f1"],
            "y_gauss",
            Family::Gaussian,
            &GlmOptions::default(),
            TransferPolicy::Uniform,
            &Ledger::new(),
        )
        .unwrap();
        for (c, e) in fit.model.coefficients.iter().zip([2.0, 1.5, -0.5]) {
            assert!((c - e).abs() < 1e-9, "{:?}", fit.model.coefficients);
        }
    }

    #[test]
    fn sgd_streams_updates_during_load() {
        let (db, dr, vft) = regression_db(2, 4000);
        let opts = GlmOptions {
            solver: GlmSolver::Sgd {
                learning_rate: 0.3,
                epochs: 40,
                minibatch: 64,
            },
            ..Default::default()
        };
        let fit = glm_while_loading(
            &vft,
            &db,
            &dr,
            "train",
            &["f0", "f1"],
            "y_gauss",
            Family::Gaussian,
            &opts,
            TransferPolicy::Locality,
            &Ledger::new(),
        )
        .unwrap();
        assert!(fit.overlap_ns > 0);
        for (c, e) in fit.model.coefficients.iter().zip([2.0, 1.5, -0.5]) {
            assert!((c - e).abs() < 0.15, "{:?}", fit.model.coefficients);
        }
    }

    #[test]
    fn pipelined_kmeans_matches_staged_fit() {
        let (db, dr, vft) = blobs_db(3, 3000);
        let opts = KmeansOptions {
            k: 3,
            max_iterations: 30,
            initial_centers: Some(vec![1.0, 1.0, 11.0, 11.0, -11.0, 9.0]),
            ..Default::default()
        };
        let fit = kmeans_while_loading(
            &vft,
            &db,
            &dr,
            "pts",
            &["px", "py"],
            &opts,
            TransferPolicy::Locality,
            &Ledger::new(),
        )
        .unwrap();
        assert_eq!(fit.report.rows, 3000);
        assert!(fit.overlap_ns > 0, "assignment must overlap the transfer");
        // Staged reference: same data, Lloyd from the same initial centers
        // entirely after the load.
        let staged = hpdkmeans(&fit.x, &opts).unwrap();
        for (a, b) in fit.model.centers.iter().zip(&staged.centers) {
            for (x, y) in a.iter().zip(b) {
                assert!(
                    (x - y).abs() < 1e-9,
                    "{:?} vs {:?}",
                    fit.model.centers,
                    staged.centers
                );
            }
        }
        assert!(
            (fit.model.total_withinss - staged.total_withinss).abs()
                < 1e-9 * staged.total_withinss.max(1.0)
        );
    }

    #[test]
    fn validations() {
        let (db, dr, vft) = blobs_db(1, 60);
        let ledger = Ledger::new();
        // K-means needs explicit starting centers.
        let no_init = KmeansOptions {
            k: 3,
            ..Default::default()
        };
        assert!(kmeans_while_loading(
            &vft,
            &db,
            &dr,
            "pts",
            &["px", "py"],
            &no_init,
            TransferPolicy::Locality,
            &ledger,
        )
        .is_err());
        // A caller-set warm start would be silently overwritten — reject it.
        let preset = GlmOptions {
            initial_beta: Some(vec![0.0; 3]),
            ..Default::default()
        };
        assert!(glm_while_loading(
            &vft,
            &db,
            &dr,
            "pts",
            &["px"],
            "py",
            Family::Gaussian,
            &preset,
            TransferPolicy::Locality,
            &ledger,
        )
        .is_err());
    }
}
