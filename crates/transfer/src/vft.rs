//! Vertica Fast Transfer (Section 3).
//!
//! One SQL query (Figure 4) starts the whole transfer:
//!
//! ```sql
//! SELECT ExportToDistributedR(col1, col2 USING PARAMETERS
//!        transfer='7', workers='0,1,2', policy='locality', psize=100000)
//! OVER (PARTITION BEST) FROM mytable
//! ```
//!
//! The query planner spawns UDx instances on every database node; each reads
//! only node-local segment containers, buffers about `psize` rows, encodes a
//! binary columnar block, and streams it to its target Distributed R
//! worker(s) according to the distribution policy (Figures 5 and 6).
//!
//! ## The pipelined receive path
//!
//! Worker receive pools do not wait for the export query to finish before
//! touching the bytes. Each accepted stream is drained chunk by chunk: the
//! chunk is staged zero-copy in shared memory (`/dev/shm`, Section 3.3), fed
//! to an incremental [`FrameAssembler`], and every completed frame is decoded
//! into a columnar [`Batch`] *on the spot* — so the database-side export and
//! the client-side conversion overlap instead of running back to back. The
//! wire format is a 16-byte stream header `[src u64 LE][instance u64 LE]`
//! followed by frames of `[len u64 LE][block]`; senders emit the length
//! header and the encoded block as two separate chunks (a vectored write),
//! so the assembler's zero-copy fast path — slicing a frame straight out of
//! one chunk — is also the common path, and no per-block framing copy is
//! made on either side.
//!
//! Decoded streams are sorted by `(source node, instance)` so conversion
//! order is deterministic; the final assembly into [`DArray`]/[`DFrame`]
//! partitions runs on the workers ([`DistributedR::run_on_workers`]) with
//! per-batch / per-column work fanned across each worker's instance lanes.
//!
//! The receive pools' measured behaviour surfaces twice: wall-clock wait and
//! decode time go to the `vft.receive.*` metrics, while the simulated-time
//! gap between the `vft db` and `vft r` phases — the part of the export the
//! client could not overlap — is reported as
//! [`TransferReport::queue_time`].

use crate::report::TransferReport;
use crate::{check_features, gather_f64_rows};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vdr_cluster::{NodeId, PhaseKind, PhaseRecorder, SharedMem, StreamRx};
use vdr_columnar::{decode_batch, encode_batch, Batch, Column, DataType, Schema};
use vdr_distr::{DArray, DFrame, DistributedR};
use vdr_verticadb::{DbError, Result, TransformFunction, UdxContext, VerticaDb};

/// How exported data spreads over Distributed R workers (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferPolicy {
    /// One-to-one mapping from database nodes to workers: "all UDF instances
    /// executing on Vertica node 1 will send data to Distributed R worker 1"
    /// (Figure 5). Minimizes network traffic when co-located, but inherits
    /// any segment skew.
    Locality,
    /// Round-robin sprinkling so every worker ends up with the same amount
    /// of data regardless of segmentation (Figure 6).
    Uniform,
}

impl TransferPolicy {
    pub fn as_param(self) -> &'static str {
        match self {
            TransferPolicy::Locality => "locality",
            TransferPolicy::Uniform => "uniform",
        }
    }

    fn from_param(s: &str) -> Result<Self> {
        match s {
            "locality" => Ok(TransferPolicy::Locality),
            "uniform" => Ok(TransferPolicy::Uniform),
            other => Err(DbError::Plan(format!("unknown transfer policy '{other}'"))),
        }
    }
}

// ----------------------------------------------------------------- the hub

/// The rendezvous between export UDx instances (connecting out of the
/// database) and worker receive pools (listening). Plays the role of the
/// workers' listening sockets.
struct ExportHub {
    listeners: Mutex<HashMap<(u64, usize), Sender<StreamRx>>>,
    /// Cluster-unique transfer ids: the hub is shared by every session on a
    /// database, so ids never collide across concurrent sessions.
    next_transfer: AtomicU64,
}

impl ExportHub {
    fn new() -> Self {
        ExportHub {
            listeners: Mutex::new(HashMap::new()),
            next_transfer: AtomicU64::new(1),
        }
    }

    /// Worker `w` starts listening for transfer `id`.
    fn listen(&self, id: u64, worker: usize) -> Receiver<StreamRx> {
        let (tx, rx) = unbounded();
        self.listeners.lock().insert((id, worker), tx);
        rx
    }

    /// A UDx instance connects to worker `w` of transfer `id`.
    fn connect(
        &self,
        ctx: &UdxContext<'_>,
        id: u64,
        worker: usize,
        worker_node: NodeId,
    ) -> Result<vdr_cluster::StreamTx> {
        let accept = self
            .listeners
            .lock()
            .get(&(id, worker))
            .cloned()
            .ok_or_else(|| {
                DbError::Exec(format!("transfer {id}: worker {worker} not listening"))
            })?;
        let (tx, rx) = ctx
            .cluster
            .network()
            .connect(ctx.rec, ctx.node, worker_node)?;
        ctx.rec.fixed(ctx.node, ctx.cluster.profile().net_latency);
        accept
            .send(rx)
            .map_err(|_| DbError::Exec(format!("transfer {id}: worker {worker} hung up")))?;
        Ok(tx)
    }

    /// End of transfer: stop accepting new streams.
    fn close(&self, id: u64) {
        self.listeners.lock().retain(|(t, _), _| *t != id);
    }
}

// ------------------------------------------------------- framing / receive

/// Callback invoked inside a worker's receive pool immediately after each
/// frame decodes — while the export query may still be producing. Arguments
/// are `(worker, source node, source instance, batch)`. This is the
/// train-while-loading hook (see [`crate::train`]): per-batch statistics
/// folded here overlap the database-side export instead of running after
/// it. Runs on pool threads, so it must be `Send + Sync`; keep per-call work
/// proportional to the batch or it will stall the decode loop.
pub type BatchObserver = Arc<dyn Fn(usize, u64, u64, &Batch) + Send + Sync>;

/// Node-local flavor used inside the receive path: `(frame_seq, decode_ns,
/// batch)` for one stream, with the partition index already bound.
type FrameObserver<'a> = &'a dyn Fn(u64, u64, &Batch);

/// Reference framing from the staged-era path: copy the block behind a
/// length header into one buffer. The live sender now ships header and block
/// as two chunks instead; tests keep this as the known-good oracle.
#[cfg(test)]
fn frame_block(block: &Bytes) -> Bytes {
    let mut framed = Vec::with_capacity(block.len() + 8);
    framed.extend_from_slice(&(block.len() as u64).to_le_bytes());
    framed.extend_from_slice(block);
    Bytes::from(framed)
}

/// Whole-stream splitter over a fully buffered stream body; the reference
/// the incremental [`FrameAssembler`] is tested against.
#[cfg(test)]
fn deframe(data: &[u8]) -> Result<Vec<&[u8]>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + 8 > data.len() {
            return Err(DbError::Exec("truncated frame header".into()));
        }
        let len = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("8 bytes")) as usize;
        pos += 8;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| DbError::Exec("truncated frame body".into()))?;
        out.push(&data[pos..end]);
        pos = end;
    }
    Ok(out)
}

/// An ordered queue of received byte chunks with zero-copy extraction when a
/// request lines up with chunk boundaries — the common case, because senders
/// emit each length header and each encoded block as its own chunk.
#[derive(Default)]
struct ChunkBuf {
    chunks: VecDeque<Bytes>,
    len: usize,
}

impl ChunkBuf {
    fn push(&mut self, chunk: Bytes) {
        if !chunk.is_empty() {
            self.len += chunk.len();
            self.chunks.push_back(chunk);
        }
    }

    /// Remove the next `n` bytes, or `None` if fewer have arrived so far.
    /// Slices straight out of the front chunk when it covers the request;
    /// assembles across chunk boundaries only when it doesn't.
    fn take(&mut self, n: usize) -> Option<Bytes> {
        if self.len < n {
            return None;
        }
        if n == 0 {
            return Some(Bytes::new());
        }
        self.len -= n;
        let front = self.chunks.front_mut().expect("len >= n > 0");
        if front.len() == n {
            return self.chunks.pop_front();
        }
        if front.len() > n {
            let head = front.slice(..n);
            *front = front.slice(n..);
            return Some(head);
        }
        let mut out = Vec::with_capacity(n);
        let mut need = n;
        while need > 0 {
            let chunk = self.chunks.pop_front().expect("accounted in len");
            if chunk.len() <= need {
                need -= chunk.len();
                out.extend_from_slice(&chunk);
            } else {
                out.extend_from_slice(&chunk[..need]);
                self.chunks.push_front(chunk.slice(need..));
                need = 0;
            }
        }
        Some(Bytes::from(out))
    }
}

/// Incremental splitter for the VFT wire format: a 16-byte stream header
/// `[src u64 LE][instance u64 LE]`, then frames of `[len u64 LE][block]`.
/// Push chunks as they arrive, pull complete frames out as soon as their
/// bytes exist — this is what lets a receive pool decode while the export
/// query is still producing.
#[derive(Default)]
struct FrameAssembler {
    buf: ChunkBuf,
    header: Option<(u64, u64)>,
    frame_len: Option<usize>,
}

impl FrameAssembler {
    fn push(&mut self, chunk: Bytes) {
        self.buf.push(chunk);
    }

    /// The next complete frame body, if all of its bytes have arrived.
    fn next_frame(&mut self) -> Option<Bytes> {
        if self.header.is_none() {
            let h = self.buf.take(16)?;
            let src = u64::from_le_bytes(h[0..8].try_into().expect("8 bytes"));
            let inst = u64::from_le_bytes(h[8..16].try_into().expect("8 bytes"));
            self.header = Some((src, inst));
        }
        if self.frame_len.is_none() {
            let l = self.buf.take(8)?;
            self.frame_len =
                Some(u64::from_le_bytes(l[0..8].try_into().expect("8 bytes")) as usize);
        }
        let body = self.buf.take(self.frame_len.expect("just set"))?;
        self.frame_len = None;
        Some(body)
    }

    /// The stream ended: check nothing is left over and return the
    /// `(source node, instance)` from its header.
    fn finish(self) -> Result<(u64, u64)> {
        let Some(header) = self.header else {
            return Err(DbError::Exec(format!(
                "vft stream missing its 16-byte header (got {} bytes)",
                self.buf.len
            )));
        };
        let dangling = self.buf.len + if self.frame_len.is_some() { 8 } else { 0 };
        if dangling > 0 {
            return Err(DbError::Exec(format!(
                "vft stream truncated: {dangling} bytes of an incomplete frame \
                 after the last complete one"
            )));
        }
        Ok(header)
    }
}

/// Wall-clock receive-pool measurements (real time, not simulated): time
/// spent waiting on the wire vs. decoding, and frames decoded. These feed
/// the `vft.receive.*` metrics only — simulated phase totals stay
/// deterministic.
#[derive(Default, Clone, Copy)]
struct RecvWall {
    wait_ns: u64,
    decode_ns: u64,
    /// Time spent inside a [`BatchObserver`] (kept out of `decode_ns` so the
    /// decode metrics stay comparable whether or not an observer is set).
    observe_ns: u64,
    frames: u64,
}

impl RecvWall {
    fn absorb(&mut self, other: RecvWall) {
        self.wait_ns += other.wait_ns;
        self.decode_ns += other.decode_ns;
        self.observe_ns += other.observe_ns;
        self.frames += other.frames;
    }
}

/// One accepted stream, fully received and decoded: the exporting
/// `(node, instance)` from its header and its blocks in arrival order.
struct ReceivedStream {
    src: u64,
    inst: u64,
    batches: Vec<Batch>,
}

/// Drain one accepted stream: stage each chunk zero-copy in shared memory,
/// feed it to the frame assembler, and decode every completed frame on the
/// spot, charging the decode to `r_rec` so the `vft r` phase accounts for
/// all conversion cpu. Staged bytes are released when the stream ends —
/// including on error, so a failed stream leaves nothing behind.
#[allow(clippy::too_many_arguments)]
fn receive_stream(
    shm: &SharedMem,
    key: &str,
    rx: &StreamRx,
    r_rec: &PhaseRecorder,
    node: NodeId,
    convert_cost: f64,
    wall: &mut RecvWall,
    observer: Option<FrameObserver>,
) -> Result<(u64, u64, Vec<Batch>)> {
    let out = drain_stream(shm, key, rx, r_rec, node, convert_cost, wall, observer);
    if out.is_err() {
        // Best effort: free whatever the failed stream had staged.
        let _ = shm.take_bytes(key);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn drain_stream(
    shm: &SharedMem,
    key: &str,
    rx: &StreamRx,
    r_rec: &PhaseRecorder,
    node: NodeId,
    convert_cost: f64,
    wall: &mut RecvWall,
    observer: Option<FrameObserver>,
) -> Result<(u64, u64, Vec<Batch>)> {
    let mut asm = FrameAssembler::default();
    let mut batches = Vec::new();
    loop {
        let waited = Instant::now();
        let Some(chunk) = rx.recv() else { break };
        wall.wait_ns += waited.elapsed().as_nanos() as u64;
        shm.append_bytes(key, chunk.clone())
            .map_err(DbError::from)?;
        let decoding = Instant::now();
        asm.push(chunk);
        let mut observed = 0u64;
        while let Some(frame) = asm.next_frame() {
            let batch = decode_batch(&frame)?;
            r_rec.cpu_work(node, batch.num_values() as f64, convert_cost);
            wall.frames += 1;
            if let Some(obs) = observer {
                // The 16-byte stream header parses before the first frame,
                // so the exporting (node, instance) identity is known here.
                let (src, inst) = asm.header.expect("header precedes frames");
                let t = Instant::now();
                obs(src, inst, &batch);
                observed += t.elapsed().as_nanos() as u64;
            }
            batches.push(batch);
        }
        wall.observe_ns += observed;
        wall.decode_ns += (decoding.elapsed().as_nanos() as u64).saturating_sub(observed);
    }
    let header = asm.finish()?;
    // Every frame is decoded; the staged file has served its purpose.
    shm.take_bytes(key).map_err(DbError::from)?;
    Ok((header.0, header.1, batches))
}

// ----------------------------------------------------------- the UDx side

/// The `ExportToDistributedR` transform function.
struct ExportToDistributedR {
    hub: Arc<ExportHub>,
}

impl TransformFunction for ExportToDistributedR {
    fn name(&self) -> &str {
        "ExportToDistributedR"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn output_schema(&self, _input: &Schema, _params: &BTreeMap<String, String>) -> Result<Schema> {
        // One row per UDx instance reporting how many rows it exported.
        Ok(Schema::of(&[("rows_exported", DataType::Int64)]))
    }

    fn process_partition(
        &self,
        ctx: &UdxContext<'_>,
        input: Vec<Batch>,
        emit: &mut dyn FnMut(Batch),
    ) -> Result<()> {
        let transfer: u64 = ctx
            .param("transfer")?
            .parse()
            .map_err(|_| DbError::Plan("bad transfer id".into()))?;
        let policy = TransferPolicy::from_param(ctx.param("policy")?)?;
        let psize: usize = ctx.param_as::<usize>("psize")?.unwrap_or(100_000).max(1);
        // Worker endpoints: cluster node ids in worker-index order.
        let worker_nodes: Vec<NodeId> = ctx
            .param("workers")?
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map(NodeId)
                    .map_err(|_| DbError::Plan(format!("bad worker node id '{s}'")))
            })
            .collect::<Result<Vec<_>>>()?;
        if worker_nodes.is_empty() {
            return Err(DbError::Plan("no workers listed".into()));
        }

        let mut export_span = vdr_obs::span("vft.export");
        export_span.set_node(ctx.node.0);
        export_span.record("instance", ctx.instance);
        export_span.record("policy", policy.as_param());

        let export_cost = ctx.cluster.profile().costs.vft_export_ns_per_value;
        let nworkers = worker_nodes.len();
        // Locality: this node's data goes to "its" worker. When node counts
        // differ, fold by modulo (the policy "is used when Vertica and
        // Distributed R have the same number of nodes").
        let home_worker = worker_nodes
            .iter()
            .position(|&n| n == ctx.node)
            .unwrap_or(ctx.node.0 % nworkers);

        let mut streams: HashMap<usize, vdr_cluster::StreamTx> = HashMap::new();
        // Stagger round-robin starts across nodes and instances so worker 0
        // isn't hit by every exporter's first block.
        let mut rr = (ctx.node.0 * 31 + ctx.instance * 7) % nworkers;
        let mut buffer: Option<Batch> = None;
        let mut exported_rows = 0i64;

        // Ship one ≈psize-row block to the policy's next target. Blocks are
        // psize-granular (not container-granular) so the uniform policy
        // sprinkles evenly even when containers are large.
        let send_block = |block_batch: Batch,
                          rr: &mut usize,
                          streams: &mut HashMap<usize, vdr_cluster::StreamTx>|
         -> Result<()> {
            if block_batch.num_rows() == 0 {
                return Ok(());
            }
            let block_rows = block_batch.num_rows() as u64;
            // Serializing the buffered batch is the export work the paper
            // attributes to the database: decompress, convert, serialize.
            ctx.rec
                .cpu_work(ctx.node, block_batch.num_values() as f64, export_cost);
            let encoded = encode_batch(&block_batch);
            vdr_obs::counter_on("vft.segment.rows", ctx.node.0, block_rows);
            vdr_obs::counter_on("vft.segment.bytes", ctx.node.0, (encoded.len() + 8) as u64);
            let target = match policy {
                TransferPolicy::Locality => home_worker,
                TransferPolicy::Uniform => {
                    let t = *rr;
                    *rr = (*rr + 1) % nworkers;
                    t
                }
            };
            // Rows landing per worker node: the policy-skew signal (locality
            // inherits segment skew; uniform should flatten it).
            vdr_obs::counter_on("vft.worker.rows", worker_nodes[target].0, block_rows);
            if let std::collections::hash_map::Entry::Vacant(e) = streams.entry(target) {
                let tx = self
                    .hub
                    .connect(ctx, transfer, target, worker_nodes[target])?;
                // Stream header: (source node, instance). Receivers sort
                // accepted streams by it so conversion order is
                // deterministic — two transfers of the same table then
                // produce identically ordered partitions, which keeps
                // separately loaded X and Y arrays row-aligned.
                let mut header = Vec::with_capacity(16);
                header.extend_from_slice(&(ctx.node.0 as u64).to_le_bytes());
                header.extend_from_slice(&(ctx.instance as u64).to_le_bytes());
                tx.send(Bytes::from(header)).map_err(DbError::from)?;
                e.insert(tx);
            }
            // Vectored write: the 8-byte length header and the encoded block
            // go out as two chunks, so the block bytes are the encoder's
            // buffer all the way to the receiver — no framing copy.
            let tx = streams.get(&target).expect("stream just inserted");
            tx.send(Bytes::copy_from_slice(
                &(encoded.len() as u64).to_le_bytes(),
            ))
            .map_err(DbError::from)?;
            tx.send(encoded).map_err(DbError::from)?;
            Ok(())
        };

        for batch in input {
            exported_rows += batch.num_rows() as i64;
            match &mut buffer {
                None => buffer = Some(batch),
                Some(b) => b.extend(&batch)?,
            }
            // Drain full psize blocks from the buffer.
            while buffer.as_ref().is_some_and(|b| b.num_rows() >= psize) {
                let b = buffer.take().expect("checked above");
                let head = b.slice(0, psize);
                let rest = b.slice(psize, b.num_rows());
                if rest.num_rows() > 0 {
                    buffer = Some(rest);
                }
                send_block(head, &mut rr, &mut streams)?;
            }
        }
        if let Some(b) = buffer.take() {
            send_block(b, &mut rr, &mut streams)?;
        }
        export_span.record("rows", exported_rows);

        emit(Batch::new(
            Schema::of(&[("rows_exported", DataType::Int64)]),
            vec![Column::from_i64(vec![exported_rows])],
        )?);
        Ok(())
    }
}

/// Register `ExportToDistributedR` with the database and return the transfer
/// API bound to it. Idempotent: if the function is already installed (e.g.
/// by another session on the same database), the existing hub is shared —
/// concurrent sessions must rendezvous through one hub.
pub fn install_export_function(db: &VerticaDb) -> FastTransfer {
    if let Ok(existing) = db.udx().get("ExportToDistributedR") {
        if let Some(f) = existing.as_any().downcast_ref::<ExportToDistributedR>() {
            return FastTransfer {
                hub: Arc::clone(&f.hub),
            };
        }
    }
    let hub = Arc::new(ExportHub::new());
    db.register_transform(Arc::new(ExportToDistributedR {
        hub: Arc::clone(&hub),
    }));
    FastTransfer { hub }
}

// ------------------------------------------------------------ orchestrator

/// The client-side API: `db2darray` / `db2dframe` (Figure 3, line 5).
pub struct FastTransfer {
    hub: Arc<ExportHub>,
}

impl FastTransfer {
    /// Load numeric columns of `table` into a distributed array with one
    /// partition per worker. Returns the array and the transfer report; the
    /// `db`/`r` phases are also pushed onto `ledger`.
    pub fn db2darray(
        &self,
        db: &VerticaDb,
        dr: &DistributedR,
        table: &str,
        features: &[&str],
        policy: TransferPolicy,
        ledger: &vdr_cluster::Ledger,
    ) -> Result<(DArray, TransferReport)> {
        self.db2darray_opts(db, dr, table, features, policy, ledger, None)
    }

    /// `db2darray` with an explicit partition-size hint (rows buffered per
    /// block) instead of the rows ÷ instances default — used by the
    /// buffering ablation. `None` keeps the default.
    #[allow(clippy::too_many_arguments)]
    pub fn db2darray_opts(
        &self,
        db: &VerticaDb,
        dr: &DistributedR,
        table: &str,
        features: &[&str],
        policy: TransferPolicy,
        ledger: &vdr_cluster::Ledger,
        psize: Option<u64>,
    ) -> Result<(DArray, TransferReport)> {
        self.db2darray_inner(db, dr, table, features, policy, ledger, psize, None)
    }

    /// `db2darray` with a per-batch [`BatchObserver`]: the callback runs
    /// inside the worker receive pools on every decoded block, while the
    /// export query is still producing. This is the train-while-loading
    /// entry point — [`crate::train`] uses it to fold iteration-0 model
    /// statistics into accumulators during the transfer itself.
    #[allow(clippy::too_many_arguments)]
    pub fn db2darray_observed(
        &self,
        db: &VerticaDb,
        dr: &DistributedR,
        table: &str,
        features: &[&str],
        policy: TransferPolicy,
        ledger: &vdr_cluster::Ledger,
        observer: BatchObserver,
    ) -> Result<(DArray, TransferReport)> {
        self.db2darray_inner(
            db,
            dr,
            table,
            features,
            policy,
            ledger,
            None,
            Some(&observer),
        )
    }

    /// Advance the data collector one tick for a completed transfer (the
    /// "vft" trigger). The sampling window opened when the transfer entered
    /// its query scope, so the delta covers the export query, the receive
    /// pools, and assembly; per-node usage comes from the receive-pool phase
    /// rows captured before the report was pushed onto the ledger.
    fn transfer_dc_tick(
        db: &VerticaDb,
        before: Option<(vdr_obs::MetricsSnapshot, Instant)>,
        label: String,
        report: &TransferReport,
        pool_nodes: &[vdr_cluster::NodePhase],
    ) {
        let Some((before, started)) = before else {
            return;
        };
        let dc = vdr_obs::global().dc();
        if !dc.sampling() {
            return;
        }
        let wall_ns = started.elapsed().as_nanos() as u64;
        vdr_obs::observe("query.wall_us", wall_ns as f64 / 1e3);
        let after = vdr_obs::global().metrics().snapshot();
        let cache = db.storage().block_cache();
        let usage = pool_nodes
            .iter()
            .map(|n| vdr_obs::TickUsage {
                node: n.node,
                sim_secs: n.duration_secs,
                cpu_core_ns: n.usage.cpu_core_ns,
                disk_read_bytes: n.usage.disk_read_bytes + n.usage.disk_cached_read_bytes,
                disk_write_bytes: n.usage.disk_write_bytes,
                net_in_bytes: n.usage.net_in_bytes,
                net_out_bytes: n.usage.net_out_bytes,
                cache_bytes: cache.bytes_on(NodeId(n.node)),
            })
            .collect();
        dc.tick(vdr_obs::TickContext {
            query_id: vdr_obs::current_query_id(),
            trigger: "vft",
            label,
            status: "complete".to_string(),
            rows: report.rows,
            bytes: report.bytes,
            sim_secs: report.total().as_secs(),
            wall_ns,
            delta: after.diff(&before),
            latency: after.histogram_total("query.wall_us"),
            usage,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn db2darray_inner(
        &self,
        db: &VerticaDb,
        dr: &DistributedR,
        table: &str,
        features: &[&str],
        policy: TransferPolicy,
        ledger: &vdr_cluster::Ledger,
        psize: Option<u64>,
        observer: Option<&BatchObserver>,
    ) -> Result<(DArray, TransferReport)> {
        let def = db.catalog().get(table)?;
        check_features(&def.schema, features)?;
        // A transfer issues its export via `query_with` (not the tracked
        // statement path), so attribute the whole transfer — export, receive
        // pools, assembly — to one query id; callers already inside a
        // statement scope (e.g. a tracked CTAS) keep their id.
        let query_id = match vdr_obs::current_query_id() {
            0 => vdr_obs::next_query_id(),
            id => id,
        };
        let _query_scope = vdr_obs::QueryScope::enter(query_id);
        // Data-collector window: opened here so the tick's delta covers the
        // whole transfer (export, receive pools, assembly).
        let dc_before = vdr_obs::global()
            .dc()
            .sampling()
            .then(|| (vdr_obs::global().metrics().snapshot(), Instant::now()));
        let mut transfer_span = vdr_obs::span("vft.db2darray");
        transfer_span.record("table", table);
        transfer_span.record("policy", policy.as_param());

        // The `vft r` phase recorder exists before the query runs: receive
        // pools charge decode work to it while the export is still
        // producing (that's the pipelining).
        let r_rec = PhaseRecorder::new("vft r", PhaseKind::Sequential, db.cluster().num_nodes());
        let (received, db_time, _wall) = self.run_transfer(
            db, dr, table, features, policy, ledger, psize, &r_rec, observer,
        )?;

        // Assembly: each worker turns its decoded blocks into one darray
        // partition ("the in-memory files are converted into R objects and
        // assembled into partitions", Section 3.3). The partition buffer is
        // sized once; each block gathers column-at-a-time into its disjoint
        // row range, fanned across the worker's instance lanes.
        let array = dr
            .darray(dr.num_workers())
            .map_err(|e| DbError::Exec(e.to_string()))?;
        let ncol = features.len();
        let parent_span = transfer_span.id();
        let fills: Vec<Result<(usize, usize, Vec<f64>)>> = {
            let received = &received;
            dr.run_on_workers(&(0..dr.num_workers()).collect::<Vec<_>>(), move |w| {
                let node = dr.worker_node(w);
                let instances = dr.workers()[w].instances;
                let mut convert_span = vdr_obs::detail_span_with_parent("vft.convert", parent_span);
                convert_span.set_node(node.0);
                vdr_obs::gauge_on("vft.lanes", node.0, instances as f64);
                let batches: Vec<&Batch> =
                    received[w].iter().flat_map(|s| s.batches.iter()).collect();
                let nrow: usize = batches.iter().map(|b| b.num_rows()).sum();
                let mut data = vec![0.0f64; nrow * ncol];
                let mut jobs: Vec<(&Batch, &mut [f64])> = Vec::with_capacity(batches.len());
                let mut rest: &mut [f64] = &mut data;
                for b in batches {
                    let (head, tail) = std::mem::take(&mut rest).split_at_mut(b.num_rows() * ncol);
                    rest = tail;
                    jobs.push((b, head));
                }
                jobs.into_par_iter()
                    .try_for_each(|(b, out)| gather_f64_rows(b, out))?;
                convert_span.record("streams", received[w].len());
                convert_span.record("rows", nrow);
                Ok((w, nrow, data))
            })
            .into_iter()
            .map(|(_, r)| r)
            .collect()
        };
        let mut total_rows = 0u64;
        for fill in fills {
            let (w, nrow, rows) = fill?;
            total_rows += nrow as u64;
            array
                .fill_partition_on(w, w, nrow, ncol, rows)
                .map_err(|e| DbError::Exec(e.to_string()))?;
        }

        let r_report = r_rec.finish(db.cluster().profile());
        let client_time = r_report.duration();
        let pool_nodes = r_report.nodes.clone();
        ledger.push(r_report);
        transfer_span.record("rows", total_rows);
        transfer_span.set_sim_time(db_time + client_time);

        let values = total_rows * ncol as u64;
        let report = TransferReport {
            rows: total_rows,
            values,
            bytes: values * 8,
            db_time,
            client_time,
            // The receive pools' idle window: the part of the export the
            // pipelined conversion could not cover (clamped at zero when
            // conversion dominates).
            queue_time: db_time - client_time,
        };
        Self::transfer_dc_tick(
            db,
            dc_before,
            format!("VFT db2darray {table}"),
            &report,
            &pool_nodes,
        );
        Ok((array, report))
    }

    /// Load arbitrary columns of `table` into a distributed data frame (one
    /// partition per worker), keeping column types.
    pub fn db2dframe(
        &self,
        db: &VerticaDb,
        dr: &DistributedR,
        table: &str,
        columns: &[&str],
        policy: TransferPolicy,
        ledger: &vdr_cluster::Ledger,
    ) -> Result<(DFrame, TransferReport)> {
        let def = db.catalog().get(table)?;
        for c in columns {
            def.schema.index_of(c)?;
        }
        // One query id per transfer (see db2darray_opts).
        let query_id = match vdr_obs::current_query_id() {
            0 => vdr_obs::next_query_id(),
            id => id,
        };
        let _query_scope = vdr_obs::QueryScope::enter(query_id);
        let dc_before = vdr_obs::global()
            .dc()
            .sampling()
            .then(|| (vdr_obs::global().metrics().snapshot(), Instant::now()));
        let mut transfer_span = vdr_obs::span("vft.db2dframe");
        transfer_span.record("table", table);
        transfer_span.record("policy", policy.as_param());

        let r_rec = PhaseRecorder::new("vft r", PhaseKind::Sequential, db.cluster().num_nodes());
        let (received, db_time, _wall) =
            self.run_transfer(db, dr, table, columns, policy, ledger, None, &r_rec, None)?;

        let frame = dr
            .dframe(dr.num_workers())
            .map_err(|e| DbError::Exec(e.to_string()))?;
        let schema = def.schema.project(columns)?;
        let parent_span = transfer_span.id();
        // Assembly runs on the workers; within a worker the partition's
        // columns are stitched independently across the instance lanes.
        let parts: Vec<Result<(usize, Batch)>> = {
            let received = &received;
            let schema = &schema;
            dr.run_on_workers(&(0..dr.num_workers()).collect::<Vec<_>>(), move |w| {
                let node = dr.worker_node(w);
                let instances = dr.workers()[w].instances;
                let mut convert_span = vdr_obs::detail_span_with_parent("vft.convert", parent_span);
                convert_span.set_node(node.0);
                vdr_obs::gauge_on("vft.lanes", node.0, instances as f64);
                let batches: Vec<&Batch> =
                    received[w].iter().flat_map(|s| s.batches.iter()).collect();
                let cols: Vec<Column> = (0..schema.fields().len())
                    .into_par_iter()
                    .map(|c| -> Result<Column> {
                        let mut col = Column::empty(schema.field(c).dtype);
                        for b in &batches {
                            col.extend(b.column(c))?;
                        }
                        Ok(col)
                    })
                    .collect::<Result<Vec<Column>>>()?;
                let part = Batch::new(schema.clone(), cols)?;
                convert_span.record("streams", received[w].len());
                convert_span.record("rows", part.num_rows());
                Ok((w, part))
            })
            .into_iter()
            .map(|(_, r)| r)
            .collect()
        };
        let mut total_rows = 0u64;
        let mut total_values = 0u64;
        let mut total_bytes = 0u64;
        for part in parts {
            let (w, part) = part?;
            total_rows += part.num_rows() as u64;
            total_values += part.num_values();
            total_bytes += part.byte_size();
            frame
                .fill_partition_on(w, w, part)
                .map_err(|e| DbError::Exec(e.to_string()))?;
        }
        let r_report = r_rec.finish(db.cluster().profile());
        let client_time = r_report.duration();
        let pool_nodes = r_report.nodes.clone();
        ledger.push(r_report);
        transfer_span.record("rows", total_rows);
        transfer_span.set_sim_time(db_time + client_time);

        let report = TransferReport {
            rows: total_rows,
            values: total_values,
            bytes: total_bytes,
            db_time,
            client_time,
            queue_time: db_time - client_time,
        };
        Self::transfer_dc_tick(
            db,
            dc_before,
            format!("VFT db2dframe {table}"),
            &report,
            &pool_nodes,
        );
        Ok((frame, report))
    }

    /// Issue the export query while worker receive pools drain, stage, and
    /// decode incoming streams as they arrive. Returns the decoded streams
    /// per worker (sorted by source for determinism), the DB-side phase
    /// duration, and the pools' wall-clock measurements; the phase report is
    /// pushed onto `ledger`. Decode cpu is charged to `r_rec` as it happens.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn run_transfer(
        &self,
        db: &VerticaDb,
        dr: &DistributedR,
        table: &str,
        columns: &[&str],
        policy: TransferPolicy,
        ledger: &vdr_cluster::Ledger,
        psize_override: Option<u64>,
        r_rec: &PhaseRecorder,
        observer: Option<&BatchObserver>,
    ) -> Result<(Vec<Vec<ReceivedStream>>, vdr_cluster::SimDuration, RecvWall)> {
        let transfer = self.hub.next_transfer.fetch_add(1, Ordering::Relaxed);
        let nworkers = dr.num_workers();
        let workers_param: String = dr
            .workers()
            .iter()
            .map(|w| w.node.0.to_string())
            .collect::<Vec<_>>()
            .join(",");

        // Partition-size hint: rows ÷ total R instances ("calculated by
        // dividing the number of rows in the Vertica table by the total
        // number of R instances waiting to receive the data", Section 3.1).
        let total_rows = db.storage().total_rows(table);
        let psize = psize_override
            .unwrap_or(total_rows / dr.total_instances().max(1) as u64)
            .max(1);

        let mut db_span = vdr_obs::span("vft.db");
        db_span.record("transfer", transfer);
        db_span.record("psize", psize);
        db_span.record("workers", nworkers);

        let convert_cost = db.cluster().profile().costs.vft_convert_ns_per_value;
        let db_rec = Arc::new(PhaseRecorder::new(
            "vft db",
            PhaseKind::Pipelined,
            db.cluster().num_nodes(),
        ));

        // Start the receive pools, then issue the single SQL query.
        let accepts: Vec<Receiver<StreamRx>> = (0..nworkers)
            .map(|w| self.hub.listen(transfer, w))
            .collect();

        let pool_parent = db_span.id();
        let query_id = vdr_obs::current_query_id();
        let (received, wall) =
            std::thread::scope(|scope| -> Result<(Vec<Vec<ReceivedStream>>, RecvWall)> {
                let handles: Vec<_> = accepts
                    .into_iter()
                    .enumerate()
                    .map(|(w, accept)| {
                        let node = db.cluster().node(dr.worker_node(w)).clone();
                        let observer = observer.map(Arc::clone);
                        scope.spawn(move || -> Result<(Vec<ReceivedStream>, RecvWall)> {
                            // The worker's receive pool: accept streams and
                            // decode their frames as the bytes arrive, so
                            // conversion overlaps the still-running export.
                            let node_id = dr.worker_node(w);
                            // Pool threads are spawned fresh: re-enter the
                            // transfer's query scope and the worker's node
                            // scope so spans/metrics/events recorded here
                            // stay attributed.
                            let _q = vdr_obs::QueryScope::enter(query_id);
                            let _n = vdr_obs::NodeScope::enter(node_id.0);
                            let mut pool_span =
                                vdr_obs::detail_span_with_parent("vft.receive", pool_parent);
                            pool_span.record("worker", w);
                            r_rec.set_lanes(node_id, dr.workers()[w].instances);
                            // Bind the worker index once; streams then only
                            // see the `(src, inst, batch)` part.
                            let worker_obs = observer
                                .map(|o| move |src: u64, inst: u64, b: &Batch| o(w, src, inst, b));
                            let mut wall = RecvWall::default();
                            let mut streams: Vec<ReceivedStream> = Vec::new();
                            let mut idx = 0usize;
                            loop {
                                let waited = Instant::now();
                                let Ok(rx) = accept.recv() else { break };
                                wall.wait_ns += waited.elapsed().as_nanos() as u64;
                                let key = format!("vft/{transfer}/{w}/{idx}");
                                idx += 1;
                                let (src, inst, batches) = match receive_stream(
                                    node.shm(),
                                    &key,
                                    &rx,
                                    r_rec,
                                    node_id,
                                    convert_cost,
                                    &mut wall,
                                    worker_obs.as_ref().map(|f| f as &dyn Fn(u64, u64, &Batch)),
                                ) {
                                    Ok(decoded) => decoded,
                                    Err(e) => {
                                        vdr_obs::event(
                                            "vft.receive.error",
                                            format!("transfer={transfer} worker={w} error={e}"),
                                        );
                                        return Err(e);
                                    }
                                };
                                streams.push(ReceivedStream { src, inst, batches });
                            }
                            // Sort by (source node, instance) so conversion
                            // order — and thus partition row order — is
                            // deterministic across transfers.
                            streams.sort_by_key(|s| (s.src, s.inst));
                            vdr_obs::counter_on("vft.receive.wait_ns", node_id.0, wall.wait_ns);
                            vdr_obs::counter_on("vft.receive.decode_ns", node_id.0, wall.decode_ns);
                            if wall.observe_ns > 0 {
                                vdr_obs::counter_on(
                                    "vft.receive.observe_ns",
                                    node_id.0,
                                    wall.observe_ns,
                                );
                            }
                            vdr_obs::counter_on("vft.receive.frames", node_id.0, wall.frames);
                            vdr_obs::observe_on(
                                "vft.receive.stream_decode_ms",
                                node_id.0,
                                wall.decode_ns as f64 / 1e6,
                            );
                            pool_span.record("streams", streams.len());
                            pool_span.record("frames", wall.frames);
                            Ok((streams, wall))
                        })
                    })
                    .collect();

                let sql = format!(
                    "SELECT ExportToDistributedR({cols} USING PARAMETERS transfer='{transfer}', \
                     workers='{workers_param}', policy='{policy}', psize={psize}) \
                     OVER (PARTITION BEST) FROM {table}",
                    cols = columns.join(", "),
                    policy = policy.as_param(),
                );
                let query_result = db.query_with(&sql, &db_rec);
                // Whatever happened, stop accepting so receivers terminate.
                self.hub.close(transfer);
                let joined: Vec<Result<(Vec<ReceivedStream>, RecvWall)>> = handles
                    .into_iter()
                    .map(|h| h.join().expect("receiver panicked"))
                    .collect();
                // A receive-pool error is the root cause: the exporter then
                // saw a hung-up worker and the query failed after it, so
                // report the receiver's error first.
                let mut received = Vec::with_capacity(nworkers);
                let mut wall = RecvWall::default();
                for j in joined {
                    let (streams, w) = j?;
                    wall.absorb(w);
                    received.push(streams);
                }
                query_result?;
                Ok((received, wall))
            })?;

        let db_report = Arc::into_inner(db_rec)
            .expect("query released its recorder")
            .finish(db.cluster().profile());
        let db_time = db_report.duration();
        db_span.record("receive_wait_ms", wall.wait_ns / 1_000_000);
        db_span.record("receive_decode_ms", wall.decode_ns / 1_000_000);
        db_span.record("frames", wall.frames);
        db_span.set_sim_time(db_time);
        ledger.push(db_report);
        Ok((received, db_time, wall))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch_to_f64_rows;
    use proptest::prelude::*;
    use vdr_cluster::{Ledger, SimCluster};
    use vdr_verticadb::Segmentation;
    use vdr_workloads_shim::make_table;

    /// Minimal local workload helper (the real generators live in
    /// vdr-workloads, which depends on this crate's consumers, not on us).
    mod vdr_workloads_shim {
        use vdr_columnar::{Batch, Column, DataType, Schema};
        use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

        pub fn make_table(db: &VerticaDb, name: &str, rows: i64, seg: Segmentation) {
            let schema = Schema::of(&[
                ("id", DataType::Int64),
                ("a", DataType::Float64),
                ("b", DataType::Float64),
            ]);
            db.create_table(TableDef {
                name: name.into(),
                schema: schema.clone(),
                segmentation: seg,
            })
            .unwrap();
            // Load in several batches so nodes hold multiple containers.
            let chunk = (rows / 4).max(1);
            let mut start = 0i64;
            while start < rows {
                let end = (start + chunk).min(rows);
                let ids: Vec<i64> = (start..end).collect();
                let a: Vec<f64> = ids.iter().map(|&i| i as f64).collect();
                let b: Vec<f64> = ids.iter().map(|&i| (i * 2) as f64).collect();
                let batch = Batch::new(
                    schema.clone(),
                    vec![
                        Column::from_i64(ids),
                        Column::from_f64(a),
                        Column::from_f64(b),
                    ],
                )
                .unwrap();
                db.copy(name, vec![batch]).unwrap();
                start = end;
            }
        }
    }

    fn setup(
        nodes: usize,
        rows: i64,
        seg: Segmentation,
    ) -> (Arc<VerticaDb>, DistributedR, FastTransfer, Ledger) {
        let cluster = SimCluster::for_tests(nodes);
        let db = VerticaDb::new(cluster.clone());
        make_table(&db, "samples", rows, seg);
        let dr = DistributedR::on_all_nodes(cluster, 4).unwrap();
        let vft = install_export_function(&db);
        (db, dr, vft, Ledger::new())
    }

    #[test]
    fn darray_transfer_delivers_every_row_exactly_once() {
        let (db, dr, vft, ledger) = setup(
            3,
            3000,
            Segmentation::Hash {
                column: "id".into(),
            },
        );
        let (arr, report) = vft
            .db2darray(
                &db,
                &dr,
                "samples",
                &["id", "a", "b"],
                TransferPolicy::Locality,
                &ledger,
            )
            .unwrap();
        assert_eq!(report.rows, 3000);
        assert_eq!(arr.dim(), (3000, 3));
        // Sum of ids must match arithmetic series — catches duplicates and
        // losses that row counts alone would miss.
        let sums = arr
            .map_partitions(|_, p| (0..p.nrow).map(|r| p.row(r)[0]).sum::<f64>())
            .unwrap();
        let total: f64 = sums.iter().sum();
        assert_eq!(total, (2999.0 * 3000.0) / 2.0);
        // Each row is consistent: b = 2a = 2·id.
        let consistent = arr
            .map_partitions(|_, p| {
                (0..p.nrow).all(|r| {
                    let row = p.row(r);
                    row[1] == row[0] && row[2] == 2.0 * row[0]
                })
            })
            .unwrap();
        assert!(consistent.iter().all(|&c| c));
        assert!(report.db_time.as_secs() > 0.0);
        assert!(report.client_time.as_secs() > 0.0);
    }

    #[test]
    fn locality_policy_preserves_segment_sizes() {
        let (db, dr, vft, ledger) = setup(
            2,
            4000,
            Segmentation::Skewed {
                weights: vec![4.0, 1.0],
            },
        );
        let seg_rows = db.storage().segment_rows("samples");
        let (arr, _) = vft
            .db2darray(
                &db,
                &dr,
                "samples",
                &["a"],
                TransferPolicy::Locality,
                &ledger,
            )
            .unwrap();
        let sizes = arr.partition_sizes();
        // Partition w holds exactly node w's segment.
        assert_eq!(sizes[0].0, seg_rows[0]);
        assert_eq!(sizes[1].0, seg_rows[1]);
        assert!(
            sizes[0].0 > sizes[1].0 * 3,
            "skew must survive locality transfer"
        );
    }

    #[test]
    fn uniform_policy_balances_skewed_segments() {
        let (db, dr, vft, ledger) = setup(
            2,
            4000,
            Segmentation::Skewed {
                weights: vec![4.0, 1.0],
            },
        );
        let (arr, report) = vft
            .db2darray(
                &db,
                &dr,
                "samples",
                &["a"],
                TransferPolicy::Uniform,
                &ledger,
            )
            .unwrap();
        assert_eq!(report.rows, 4000);
        let sizes = arr.partition_sizes();
        let (a, b) = (sizes[0].0 as f64, sizes[1].0 as f64);
        let ratio = a.max(b) / a.min(b).max(1.0);
        assert!(ratio < 1.6, "uniform policy should balance: {sizes:?}");
    }

    #[test]
    fn dframe_transfer_keeps_types() {
        let (db, dr, vft, ledger) = setup(2, 500, Segmentation::RoundRobin);
        let (frame, report) = vft
            .db2dframe(
                &db,
                &dr,
                "samples",
                &["id", "a"],
                TransferPolicy::Locality,
                &ledger,
            )
            .unwrap();
        assert_eq!(report.rows, 500);
        let all = frame.gather().unwrap();
        assert_eq!(all.num_rows(), 500);
        assert_eq!(all.schema().names(), vec!["id", "a"]);
        assert_eq!(all.column(0).data_type(), DataType::Int64);
        assert_eq!(all.column(1).data_type(), DataType::Float64);
    }

    #[test]
    fn varchar_features_rejected_for_darray() {
        let cluster = SimCluster::for_tests(2);
        let db = VerticaDb::new(cluster.clone());
        db.query("CREATE TABLE t (s VARCHAR, x FLOAT)").unwrap();
        let dr = DistributedR::on_all_nodes(cluster, 1).unwrap();
        let vft = install_export_function(&db);
        let ledger = Ledger::new();
        let err = vft
            .db2darray(&db, &dr, "t", &["s"], TransferPolicy::Locality, &ledger)
            .unwrap_err();
        assert!(err.to_string().contains("db2dframe"));
        assert!(vft
            .db2darray(&db, &dr, "t", &[], TransferPolicy::Locality, &ledger)
            .is_err());
    }

    #[test]
    fn empty_table_produces_empty_partitions() {
        let (db, dr, vft, ledger) = setup(2, 0, Segmentation::RoundRobin);
        // make_table loads at least one chunk; create a genuinely empty one.
        db.query("CREATE TABLE empty_t (a FLOAT)").unwrap();
        let (arr, report) = vft
            .db2darray(
                &db,
                &dr,
                "empty_t",
                &["a"],
                TransferPolicy::Locality,
                &ledger,
            )
            .unwrap();
        assert_eq!(report.rows, 0);
        assert_eq!(arr.dim().0, 0);
        assert!(arr.is_materialized());
    }

    #[test]
    fn transfers_ride_on_a_single_sql_query() {
        let (db, dr, vft, ledger) = setup(2, 1000, Segmentation::RoundRobin);
        let before = db.admission().admitted();
        vft.db2darray(
            &db,
            &dr,
            "samples",
            &["a", "b"],
            TransferPolicy::Locality,
            &ledger,
        )
        .unwrap();
        // The heart of VFT: exactly ONE query, not one per R instance.
        assert_eq!(db.admission().admitted(), before + 1);
    }

    #[test]
    fn concurrent_transfers_do_not_cross_wires() {
        let (db, dr, vft, _) = setup(2, 2000, Segmentation::RoundRobin);
        let vft = Arc::new(vft);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let db = Arc::clone(&db);
                    let dr = dr.clone();
                    let vft = Arc::clone(&vft);
                    s.spawn(move || {
                        let ledger = Ledger::new();
                        let (arr, report) = vft
                            .db2darray(
                                &db,
                                &dr,
                                "samples",
                                &["id"],
                                TransferPolicy::Uniform,
                                &ledger,
                            )
                            .unwrap();
                        let sums = arr
                            .map_partitions(|_, p| p.data.iter().sum::<f64>())
                            .unwrap();
                        (report.rows, sums.iter().sum::<f64>())
                    })
                })
                .collect();
            for h in handles {
                let (rows, sum) = h.join().unwrap();
                assert_eq!(rows, 2000);
                assert_eq!(sum, 1999.0 * 2000.0 / 2.0);
            }
        });
    }

    #[test]
    fn separate_transfers_of_one_table_stay_row_aligned() {
        // Deterministic stream ordering guarantee: loading X columns and the
        // Y column in two transfers must deliver rows in the same order, or
        // co-partitioned training data would silently misalign.
        check_row_alignment(TransferPolicy::Locality);
    }

    #[test]
    fn uniform_transfers_stay_row_aligned() {
        // Same guarantee under round-robin sprinkling: the rr stagger and
        // psize depend only on (node, instance) and the table, never on the
        // transfer id, so two uniform transfers land rows identically.
        check_row_alignment(TransferPolicy::Uniform);
    }

    fn check_row_alignment(policy: TransferPolicy) {
        let (db, dr, vft, ledger) = setup(
            3,
            2500,
            Segmentation::Hash {
                column: "id".into(),
            },
        );
        let (xa, _) = vft
            .db2darray(&db, &dr, "samples", &["id", "a"], policy, &ledger)
            .unwrap();
        let (yb, _) = vft
            .db2darray(&db, &dr, "samples", &["b"], policy, &ledger)
            .unwrap();
        xa.check_copartitioned(&yb).unwrap();
        // Row-wise: b == 2·id in the generator; verify against the separately
        // transferred array.
        let aligned = xa
            .zip_map(&yb, |_, xp, yp| {
                (0..xp.nrow).all(|r| yp.data[r] == 2.0 * xp.row(r)[0])
            })
            .unwrap();
        assert!(
            aligned.iter().all(|&ok| ok),
            "transfers delivered rows in different orders"
        );
    }

    /// Reference implementation of the retired staged data path: buffer
    /// every stream's raw bytes until the export query finishes, then strip
    /// the header, deframe, decode, and flatten — the pipelined path must
    /// produce bit-identical partitions.
    fn staged_reference(
        db: &VerticaDb,
        dr: &DistributedR,
        vft: &FastTransfer,
        table: &str,
        features: &[&str],
        policy: TransferPolicy,
    ) -> Vec<Vec<f64>> {
        let transfer = vft.hub.next_transfer.fetch_add(1, Ordering::Relaxed);
        let nworkers = dr.num_workers();
        let accepts: Vec<Receiver<StreamRx>> =
            (0..nworkers).map(|w| vft.hub.listen(transfer, w)).collect();
        let workers_param: String = dr
            .workers()
            .iter()
            .map(|w| w.node.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let psize = (db.storage().total_rows(table) / dr.total_instances().max(1) as u64).max(1);
        let db_rec = Arc::new(PhaseRecorder::new(
            "vft db",
            PhaseKind::Pipelined,
            db.cluster().num_nodes(),
        ));
        std::thread::scope(|scope| {
            let handles: Vec<_> = accepts
                .into_iter()
                .map(|accept| {
                    scope.spawn(move || {
                        let mut streams: Vec<(u64, u64, Vec<u8>)> = Vec::new();
                        while let Ok(rx) = accept.recv() {
                            let raw = rx.recv_all();
                            assert!(raw.len() >= 16, "stream missing header");
                            let src = u64::from_le_bytes(raw[0..8].try_into().unwrap());
                            let inst = u64::from_le_bytes(raw[8..16].try_into().unwrap());
                            streams.push((src, inst, raw[16..].to_vec()));
                        }
                        streams.sort_by_key(|&(s, i, _)| (s, i));
                        let mut part: Vec<f64> = Vec::new();
                        for (_, _, data) in &streams {
                            for frame in deframe(data).unwrap() {
                                let batch = decode_batch(frame).unwrap();
                                part.extend(batch_to_f64_rows(&batch).unwrap());
                            }
                        }
                        part
                    })
                })
                .collect();
            let sql = format!(
                "SELECT ExportToDistributedR({cols} USING PARAMETERS transfer='{transfer}', \
                 workers='{workers_param}', policy='{policy}', psize={psize}) \
                 OVER (PARTITION BEST) FROM {table}",
                cols = features.join(", "),
                policy = policy.as_param(),
            );
            db.query_with(&sql, &db_rec).unwrap();
            vft.hub.close(transfer);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn pipelined_receive_matches_staged_conversion() {
        for policy in [TransferPolicy::Locality, TransferPolicy::Uniform] {
            let (db, dr, vft, ledger) = setup(
                3,
                3000,
                Segmentation::Hash {
                    column: "id".into(),
                },
            );
            let expected = staged_reference(&db, &dr, &vft, "samples", &["id", "a", "b"], policy);
            let (arr, _) = vft
                .db2darray(&db, &dr, "samples", &["id", "a", "b"], policy, &ledger)
                .unwrap();
            let got = arr.map_partitions(|_, p| p.data.clone()).unwrap();
            assert_eq!(got, expected, "{policy:?} diverged from the staged path");
        }
    }

    #[test]
    fn queue_time_measures_the_uncovered_db_window() {
        let (db, dr, vft, ledger) = setup(2, 2000, Segmentation::RoundRobin);
        let before = vdr_obs::global().metrics().snapshot();
        let (_, report) = vft
            .db2darray(
                &db,
                &dr,
                "samples",
                &["id", "a", "b"],
                TransferPolicy::Locality,
                &ledger,
            )
            .unwrap();
        // queue_time is the receive pools' idle stretch: the part of db_time
        // that pipelined conversion did not cover, never negative.
        assert_eq!(
            report.queue_time.as_secs(),
            (report.db_time - report.client_time).as_secs()
        );
        assert!(report.queue_time.as_secs() <= report.db_time.as_secs());
        let diff = vdr_obs::global().metrics().snapshot().diff(&before);
        assert!(
            diff.counter_total("vft.receive.frames") > 0,
            "pipelined receive decoded no frames"
        );
    }

    #[test]
    fn receive_pool_errors_propagate_instead_of_panicking() {
        let cluster = SimCluster::for_tests(2);
        let rec = Arc::new(PhaseRecorder::new("test net", PhaseKind::Pipelined, 2));
        let r_rec = PhaseRecorder::new("vft r", PhaseKind::Sequential, 2);
        let mut wall = RecvWall::default();

        // Staging-area exhaustion becomes an error, not a panic.
        let tiny = SharedMem::new(NodeId(1), 4);
        let (tx, rx) = cluster
            .network()
            .connect(&rec, NodeId(0), NodeId(1))
            .unwrap();
        tx.send(Bytes::from(vec![0u8; 16])).unwrap();
        drop(tx);
        let err =
            receive_stream(&tiny, "s", &rx, &r_rec, NodeId(1), 1.0, &mut wall, None).unwrap_err();
        assert!(err.to_string().contains("exhausted"), "{err}");
        assert_eq!(tiny.used_bytes(), 0, "failed stream leaves nothing staged");

        // A stream that dies mid-frame reports truncation and releases its
        // staged bytes.
        let shm = SharedMem::new(NodeId(1), 1 << 20);
        let (tx, rx) = cluster
            .network()
            .connect(&rec, NodeId(0), NodeId(1))
            .unwrap();
        tx.send(Bytes::from(vec![0u8; 16])).unwrap();
        tx.send(Bytes::copy_from_slice(&10u64.to_le_bytes()))
            .unwrap();
        tx.send(Bytes::from(vec![1u8, 2, 3])).unwrap();
        drop(tx);
        let err =
            receive_stream(&shm, "s", &rx, &r_rec, NodeId(1), 1.0, &mut wall, None).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        assert_eq!(shm.used_bytes(), 0);

        // A stream too short to carry its header is rejected too.
        let (tx, rx) = cluster
            .network()
            .connect(&rec, NodeId(0), NodeId(1))
            .unwrap();
        tx.send(Bytes::from(vec![9u8; 5])).unwrap();
        drop(tx);
        let err =
            receive_stream(&shm, "s", &rx, &r_rec, NodeId(1), 1.0, &mut wall, None).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn truncation_is_detected_at_every_offset() {
        // Wire: header + three frames (5, 0, and 9 payload bytes). Feeding
        // any prefix must succeed exactly at frame boundaries.
        let payload_sizes = [5usize, 0, 9];
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u64.to_le_bytes());
        wire.extend_from_slice(&2u64.to_le_bytes());
        let mut valid = vec![16usize];
        for (i, &n) in payload_sizes.iter().enumerate() {
            wire.extend_from_slice(&(n as u64).to_le_bytes());
            wire.extend_from_slice(&vec![i as u8; n]);
            valid.push(wire.len());
        }
        for cut in 0..=wire.len() {
            let mut asm = FrameAssembler::default();
            asm.push(Bytes::copy_from_slice(&wire[..cut]));
            while asm.next_frame().is_some() {}
            let fin = asm.finish();
            if valid.contains(&cut) {
                assert!(fin.is_ok(), "offset {cut} is a frame boundary");
            } else {
                assert!(fin.is_err(), "cut at offset {cut} went undetected");
            }
        }
    }

    #[test]
    fn frame_roundtrip() {
        let b = Bytes::from_static(b"hello");
        let framed = frame_block(&b);
        let frames = deframe(&framed).unwrap();
        assert_eq!(frames, vec![b"hello".as_slice()]);
        // Two frames back to back.
        let mut both = framed.to_vec();
        both.extend_from_slice(&frame_block(&Bytes::from_static(b"x")));
        assert_eq!(deframe(&both).unwrap().len(), 2);
        // Truncation detected.
        assert!(deframe(&both[..both.len() - 1]).is_err());
        assert!(deframe(&[1, 2, 3]).is_err());
    }

    proptest! {
        /// The incremental assembler must reproduce the staged-era `deframe`
        /// exactly, no matter where chunk boundaries fall — including inside
        /// the stream header, a length word, or a frame body.
        #[test]
        fn assembler_reproduces_frames_under_any_chunking(
            payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..60), 0..6),
            cuts in prop::collection::vec(any::<usize>(), 0..12),
        ) {
            let mut wire = Vec::new();
            wire.extend_from_slice(&7u64.to_le_bytes());
            wire.extend_from_slice(&3u64.to_le_bytes());
            for p in &payloads {
                wire.extend_from_slice(&(p.len() as u64).to_le_bytes());
                wire.extend_from_slice(p);
            }
            let mut offsets: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
            offsets.push(0);
            offsets.push(wire.len());
            offsets.sort_unstable();
            offsets.dedup();
            let mut asm = FrameAssembler::default();
            let mut frames: Vec<Vec<u8>> = Vec::new();
            for pair in offsets.windows(2) {
                asm.push(Bytes::copy_from_slice(&wire[pair[0]..pair[1]]));
                while let Some(f) = asm.next_frame() {
                    frames.push(f.to_vec());
                }
            }
            prop_assert_eq!(&frames, &payloads);
            let reference: Vec<Vec<u8>> =
                deframe(&wire[16..]).unwrap().iter().map(|f| f.to_vec()).collect();
            prop_assert_eq!(&frames, &reference);
            prop_assert_eq!(asm.finish().unwrap(), (7, 3));
        }
    }
}
