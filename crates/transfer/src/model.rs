//! Paper-scale analytic projections of transfer times.
//!
//! The loaders in this crate really move bytes and charge real operation
//! counts — which is exactly right at laptop scale. The paper's figures,
//! however, cover 50–400 GB tables that cannot be materialized here. These
//! functions compute the same cost model *analytically* from workload shape
//! parameters, so the benches can print paper-scale projections next to
//! small-scale measurements. Tests in this module pin each projection to
//! the figure it reproduces.

use crate::report::TransferReport;
use vdr_cluster::{HardwareProfile, SimDuration};

/// Shape of a transfer workload: the paper's tables are ~50 bytes/row
/// (50 GB ≈ 1 billion rows, Section 7.1) with six numeric columns.
#[derive(Debug, Clone, Copy)]
pub struct TableShape {
    pub rows: u64,
    pub cols: u64,
    /// On-disk (compressed/encoded) size.
    pub disk_bytes: u64,
}

impl TableShape {
    /// The standard transfer table: `gb` gigabytes at 50 B/row, 6 columns.
    pub fn transfer_table_gb(gb: u64) -> Self {
        TableShape {
            rows: gb * 20_000_000,
            cols: 6,
            disk_bytes: gb * 1_000_000_000,
        }
    }

    pub fn values(&self) -> u64 {
        self.rows * self.cols
    }

    /// Raw binary width once decoded (8 B doubles).
    pub fn raw_bytes(&self) -> u64 {
        self.values() * 8
    }
}

/// Deployment shape: database nodes, R nodes, R instances per node.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShape {
    pub db_nodes: usize,
    pub r_nodes: usize,
    pub r_instances_per_node: usize,
    /// Whether the R workers share nodes with the database (loopback
    /// locality transfers are free).
    pub colocated: bool,
}

impl ClusterShape {
    pub fn connections(&self) -> usize {
        self.r_nodes * self.r_instances_per_node
    }
}

/// Figure 1, "R" bars: one ODBC connection into a single R process.
pub fn model_single_odbc(p: &HardwareProfile, t: TableShape, c: ClusterShape) -> TransferReport {
    let values = t.values() as f64;
    let costs = &p.costs;
    // Database side: one full scan, text encode, and the initiator relay —
    // pipelined.
    let disk = SimDuration::from_secs(t.disk_bytes as f64 / (c.db_nodes as f64 * p.disk_read_bps));
    let encode = SimDuration::from_nanos(values * costs.odbc_server_encode_ns_per_value)
        / (c.db_nodes as f64 * p.parallel_speedup(p.physical_cores));
    let wire = SimDuration::from_secs(t.raw_bytes() as f64 * costs.odbc_text_expansion / p.net_bps);
    let db_time = disk.max(encode).max(wire);
    // Client side: one R process parses everything on one core.
    let client_time = SimDuration::from_nanos(values * costs.odbc_client_parse_ns_per_value);
    TransferReport {
        rows: t.rows,
        values: t.values(),
        bytes: t.raw_bytes(),
        db_time,
        client_time,
        queue_time: SimDuration::from_millis(costs.odbc_connect_ms),
    }
}

/// Figures 1, 12, 13, ODBC bars: one connection per R instance, each
/// issuing an `ORDER BY … LIMIT/OFFSET` range query.
pub fn model_parallel_odbc(p: &HardwareProfile, t: TableShape, c: ClusterShape) -> TransferReport {
    let values = t.values() as f64;
    let costs = &p.costs;
    let conns = c.connections() as f64;
    // Query i scans rows [0, offset_i + n): the table is read over and over.
    // Caching and sort-key-only positioning damp the blowup; the calibrated
    // aggregate is cold-scan × (1 + β·ln C) — see the β derivation in
    // `vdr_cluster::profile`.
    let per_node_bytes = t.disk_bytes as f64 / c.db_nodes as f64;
    let cold_scan = per_node_bytes / p.disk_read_bps;
    let disk = SimDuration::from_secs(
        cold_scan * (1.0 + costs.odbc_concurrency_penalty_beta * conns.max(1.0).ln()),
    );
    // Each row is encoded and shipped once (queries return disjoint ranges).
    let encode = SimDuration::from_nanos(values * costs.odbc_server_encode_ns_per_value)
        / (c.db_nodes as f64 * p.parallel_speedup(p.physical_cores));
    // Ordered results flow through the initiator to the clients.
    let wire = SimDuration::from_secs(t.raw_bytes() as f64 * costs.odbc_text_expansion / p.net_bps);
    let db_time = disk.max(encode).max(wire);
    // Clients parse in parallel; a node's instances share its cores.
    let client_time = SimDuration::from_nanos(values * costs.odbc_client_parse_ns_per_value)
        / (c.r_nodes as f64 * p.parallel_speedup(c.r_instances_per_node));
    let waves = (c.connections() as f64 / costs.db_max_concurrent_queries as f64).ceil();
    TransferReport {
        rows: t.rows,
        values: t.values(),
        bytes: t.raw_bytes(),
        db_time,
        client_time,
        queue_time: SimDuration::from_millis(waves * costs.odbc_connect_ms),
    }
}

/// Figures 12, 13, 14, VFT bars: one SQL query, per-node UDx exports,
/// parallel binary streams, worker-side conversion.
pub fn model_vft(p: &HardwareProfile, t: TableShape, c: ClusterShape) -> TransferReport {
    let values = t.values() as f64;
    let costs = &p.costs;
    // DB part (Figure 14's definition: read from disk, serialize, send).
    let disk = SimDuration::from_secs(t.disk_bytes as f64 / (c.db_nodes as f64 * p.disk_read_bps));
    let export = SimDuration::from_nanos(values * costs.vft_export_ns_per_value)
        / (c.db_nodes as f64 * p.parallel_speedup(costs.vft_export_lanes));
    // Parallel per-node streams; co-located locality transfers skip the NIC
    // ("running Distributed R and Vertica on the same servers has similar
    // performance, which means the network is not a bottleneck").
    let wire = if c.colocated {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs(t.raw_bytes() as f64 / (c.db_nodes as f64 * p.net_bps))
    };
    let db_time = disk.max(export).max(wire);
    // R part: buffer + convert into R objects, scaling with instances.
    let client_time = SimDuration::from_nanos(values * costs.vft_convert_ns_per_value)
        / (c.r_nodes as f64 * p.parallel_speedup(c.r_instances_per_node));
    TransferReport {
        rows: t.rows,
        values: t.values(),
        bytes: t.raw_bytes(),
        db_time,
        client_time,
        queue_time: SimDuration::ZERO,
    }
}

/// Figure 21, `DR-disk`: parse files straight off each node's local ext4.
pub fn model_dr_disk(p: &HardwareProfile, t: TableShape, c: ClusterShape) -> TransferReport {
    let values = t.values() as f64;
    let disk = SimDuration::from_secs(t.raw_bytes() as f64 / (c.r_nodes as f64 * p.disk_read_bps));
    let parse = SimDuration::from_nanos(values * p.costs.dr_disk_parse_ns_per_value)
        / (c.r_nodes as f64 * p.parallel_speedup(c.r_instances_per_node));
    TransferReport {
        rows: t.rows,
        values: t.values(),
        bytes: t.raw_bytes(),
        db_time: SimDuration::ZERO,
        client_time: disk.max(parse),
        queue_time: SimDuration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> HardwareProfile {
        HardwareProfile::paper_testbed()
    }

    fn five_nodes() -> ClusterShape {
        ClusterShape {
            db_nodes: 5,
            r_nodes: 5,
            r_instances_per_node: 24,
            colocated: false,
        }
    }

    fn twelve_nodes() -> ClusterShape {
        ClusterShape {
            db_nodes: 12,
            r_nodes: 12,
            r_instances_per_node: 24,
            colocated: false,
        }
    }

    #[test]
    fn figure1_single_odbc_50gb_takes_about_an_hour() {
        let r = model_single_odbc(&profile(), TableShape::transfer_table_gb(50), five_nodes());
        let mins = r.total().as_minutes();
        assert!(
            (45.0..70.0).contains(&mins),
            "50 GB single ODBC ≈ {mins:.0} min"
        );
    }

    #[test]
    fn figure1_parallel_odbc_150gb_takes_about_40_minutes() {
        let r = model_parallel_odbc(&profile(), TableShape::transfer_table_gb(150), five_nodes());
        let mins = r.total().as_minutes();
        assert!(
            (32.0..50.0).contains(&mins),
            "150 GB ×120 conns ≈ {mins:.0} min"
        );
    }

    #[test]
    fn figure12_vft_150gb_under_about_6_minutes_and_6x_over_odbc() {
        let p = profile();
        let t = TableShape::transfer_table_gb(150);
        let vft = model_vft(&p, t, five_nodes());
        let odbc = model_parallel_odbc(&p, t, five_nodes());
        let vft_min = vft.total().as_minutes();
        assert!(vft_min < 8.0, "VFT 150 GB ≈ {vft_min:.1} min");
        let speedup = odbc.total() / vft.total();
        assert!(
            (4.5..9.0).contains(&speedup),
            "paper reports ≈6×; model gives {speedup:.1}×"
        );
    }

    #[test]
    fn figure13_vft_400gb_under_about_10_minutes_odbc_about_an_hour() {
        let p = profile();
        let t = TableShape::transfer_table_gb(400);
        let vft = model_vft(&p, t, twelve_nodes());
        let odbc = model_parallel_odbc(&p, t, twelve_nodes());
        assert!(
            vft.total().as_minutes() < 11.0,
            "VFT 400 GB ≈ {:.1} min",
            vft.total().as_minutes()
        );
        let odbc_min = odbc.total().as_minutes();
        assert!(
            (40.0..75.0).contains(&odbc_min),
            "ODBC 400 GB ≈ {odbc_min:.0} min"
        );
    }

    #[test]
    fn figure14_db_part_constant_r_part_shrinks_with_instances() {
        let p = profile();
        let t = TableShape::transfer_table_gb(400);
        let mut last_r = f64::INFINITY;
        let mut db_parts = Vec::new();
        for instances in [2, 4, 8, 16, 24] {
            let shape = ClusterShape {
                r_instances_per_node: instances,
                ..twelve_nodes()
            };
            let r = model_vft(&p, t, shape);
            db_parts.push(r.db_time.as_secs());
            assert!(
                r.client_time.as_secs() <= last_r + 1e-9,
                "R part must not grow with more instances"
            );
            last_r = r.client_time.as_secs();
        }
        // "Time taken by the database is constant and independent of the
        // parallelism in Distributed R."
        let (min, max) = (
            db_parts.iter().cloned().fold(f64::INFINITY, f64::min),
            db_parts.iter().cloned().fold(0.0, f64::max),
        );
        assert!(max - min < 1e-9, "DB part must be constant: {db_parts:?}");
        // At 2 instances/server the R part is a large share of the total
        // ("almost half of the transfer time").
        let two = model_vft(
            &p,
            t,
            ClusterShape {
                r_instances_per_node: 2,
                ..twelve_nodes()
            },
        );
        let share = two.client_time.as_secs() / two.total().as_secs();
        assert!(
            (0.25..0.6).contains(&share),
            "R share at 2 instances = {share:.2}"
        );
    }

    #[test]
    fn colocated_vft_skips_network_and_is_not_slower() {
        let p = profile();
        let t = TableShape::transfer_table_gb(100);
        let remote = model_vft(&p, t, five_nodes());
        let colocated = model_vft(
            &p,
            t,
            ClusterShape {
                colocated: true,
                ..five_nodes()
            },
        );
        assert!(colocated.total().as_secs() <= remote.total().as_secs() + 1e-9);
    }

    #[test]
    fn dr_disk_beats_vft_load_as_in_figure21() {
        // Fig 21: DR-disk ≈ 5 min, loading via Vertica ≈ 15 min for the same
        // ~180 GB of raw data on 4 nodes.
        let p = profile();
        let shape = ClusterShape {
            db_nodes: 4,
            r_nodes: 4,
            r_instances_per_node: 24,
            colocated: false,
        };
        // Fig 21's K-means table: 240M rows × 100 features ≈ 192 GB raw.
        let t = TableShape {
            rows: 240_000_000,
            cols: 100,
            disk_bytes: 192_000_000_000,
        };
        let disk = model_dr_disk(&p, t, shape);
        let vft = model_vft(&p, t, shape);
        let ratio = vft.total() / disk.total();
        assert!(
            (1.8..4.5).contains(&ratio),
            "paper: Vertica load ≈ 3× DR-disk; model gives {ratio:.1}×"
        );
        let disk_min = disk.total().as_minutes();
        assert!(
            (3.0..8.0).contains(&disk_min),
            "DR-disk ≈ {disk_min:.1} min"
        );
    }

    #[test]
    fn transfer_table_shape_matches_paper_arithmetic() {
        let t = TableShape::transfer_table_gb(50);
        assert_eq!(t.rows, 1_000_000_000); // "approximately 1 billion rows"
        assert_eq!(t.disk_bytes, 50_000_000_000);
        assert_eq!(t.values(), 6_000_000_000);
    }
}
