//! The ODBC baseline (Section 1.1, Figure 1).
//!
//! A real row-oriented, text-encoded connector: the server renders result
//! rows as tab-separated text, ships them over a single stream through the
//! initiator node, and the client parses every value back — the overheads
//! the paper attributes to ODBC. Two loaders are built on it:
//!
//! * [`OdbcLoader::load_single`] — one R instance, one connection (the
//!   "single R" bar of Figure 1).
//! * [`OdbcLoader::load_parallel`] — one connection per R instance, each
//!   fetching `1/Cᵗʰ` of the rows with `ORDER BY … LIMIT/OFFSET`. Ordered
//!   range queries force every query to scan and sort, locality is
//!   destroyed, and the burst queues behind admission control.

use crate::report::TransferReport;
use crate::{check_features, TransferPolicy};
use std::sync::Arc;
use vdr_cluster::{NodeId, PhaseKind, PhaseRecorder, SimDuration};
use vdr_columnar::{Batch, ColumnBuilder, DataType, Schema, Value};
use vdr_distr::{DArray, DistributedR};
use vdr_verticadb::{DbError, Result, VerticaDb};

/// The node Vertica result rows flow through on their way to a client (the
/// query initiator).
const INITIATOR: NodeId = NodeId(0);

/// One ODBC connection from a client node to the database.
pub struct OdbcConnection {
    client: NodeId,
}

impl OdbcConnection {
    /// Open a connection, paying the handshake.
    pub fn connect(db: &VerticaDb, client: NodeId, rec: &PhaseRecorder) -> Self {
        rec.fixed(
            client,
            SimDuration::from_millis(db.cluster().profile().costs.odbc_connect_ms),
        );
        vdr_obs::counter_on("odbc.connections", client.0, 1);
        OdbcConnection { client }
    }

    pub fn client_node(&self) -> NodeId {
        self.client
    }

    /// Execute `sql` and fetch the full result set through the text
    /// protocol. Database-side work (execution, text encoding, the wire)
    /// charges `db_rec`; client-side parsing charges `client_rec` spread
    /// over `parse_lanes` (a single R instance parses on one core).
    pub fn fetch(
        &self,
        db: &VerticaDb,
        sql: &str,
        db_rec: &Arc<PhaseRecorder>,
        client_rec: &PhaseRecorder,
        parse_lanes: usize,
    ) -> Result<Batch> {
        let mut fetch_span = vdr_obs::span("odbc.fetch");
        fetch_span.set_node(self.client.0);
        let result = db.query_with(sql, db_rec)?;
        let schema = result.schema().clone();
        let values = result.num_values();
        let costs = &db.cluster().profile().costs;

        // Server side: render rows as text. The encode really happens (the
        // client parses these exact bytes).
        let text = render_rows(&result);
        db_rec.cpu_work(
            INITIATOR,
            values as f64,
            costs.odbc_server_encode_ns_per_value,
        );
        db_rec.net(INITIATOR, self.client, text.len() as u64);
        fetch_span.record("rows", result.num_rows());
        fetch_span.record("wire_bytes", text.len());
        // Per-connection progress: rows and wire bytes delivered to each
        // client node.
        vdr_obs::counter_on(
            "odbc.connection.rows",
            self.client.0,
            result.num_rows() as u64,
        );
        vdr_obs::counter_on("odbc.connection.bytes", self.client.0, text.len() as u64);

        // Client side: parse every value.
        client_rec.set_lanes(self.client, parse_lanes);
        client_rec.cpu_work(
            self.client,
            values as f64,
            costs.odbc_client_parse_ns_per_value,
        );
        parse_rows(&schema, &text)
    }
}

/// Tab-separated text rendering, one line per row — the ODBC wire format.
/// `\t`, `\n`, and `\\` inside strings are escaped.
pub fn render_rows(batch: &Batch) -> String {
    let mut out = String::with_capacity(batch.num_rows() * batch.num_columns() * 8);
    for r in 0..batch.num_rows() {
        for (c, v) in batch.row(r).iter().enumerate() {
            if c > 0 {
                out.push('\t');
            }
            match v {
                Value::Varchar(s) => {
                    for ch in s.chars() {
                        match ch {
                            '\t' => out.push_str("\\t"),
                            '\n' => out.push_str("\\n"),
                            '\\' => out.push_str("\\\\"),
                            other => out.push(other),
                        }
                    }
                }
                other => out.push_str(&other.to_string()),
            }
        }
        out.push('\n');
    }
    out
}

/// Parse text rows back into a typed batch using ODBC result metadata
/// (`schema`).
pub fn parse_rows(schema: &Schema, text: &str) -> Result<Batch> {
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.dtype))
        .collect();
    for (lineno, line) in text.lines().enumerate() {
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != schema.len() {
            return Err(DbError::Exec(format!(
                "row {lineno}: {} fields, expected {}",
                fields.len(),
                schema.len()
            )));
        }
        for ((b, f), raw) in builders.iter_mut().zip(schema.fields()).zip(fields) {
            let value = if raw == "NULL" && f.dtype != DataType::Varchar {
                Value::Null
            } else {
                match f.dtype {
                    DataType::Int64 => Value::Int64(raw.parse().map_err(|_| {
                        DbError::Exec(format!("row {lineno}: bad integer '{raw}'"))
                    })?),
                    DataType::Float64 => {
                        Value::Float64(raw.parse().map_err(|_| {
                            DbError::Exec(format!("row {lineno}: bad float '{raw}'"))
                        })?)
                    }
                    DataType::Bool => match raw {
                        "t" => Value::Bool(true),
                        "f" => Value::Bool(false),
                        _ => {
                            return Err(DbError::Exec(format!("row {lineno}: bad boolean '{raw}'")))
                        }
                    },
                    DataType::Varchar => {
                        let mut s = String::with_capacity(raw.len());
                        let mut chars = raw.chars();
                        while let Some(ch) = chars.next() {
                            if ch == '\\' {
                                match chars.next() {
                                    Some('t') => s.push('\t'),
                                    Some('n') => s.push('\n'),
                                    Some('\\') => s.push('\\'),
                                    other => {
                                        return Err(DbError::Exec(format!(
                                            "row {lineno}: bad escape '\\{other:?}'"
                                        )))
                                    }
                                }
                            } else {
                                s.push(ch);
                            }
                        }
                        Value::Varchar(s)
                    }
                }
            };
            b.push(value)?;
        }
    }
    Ok(Batch::new(
        schema.clone(),
        builders.into_iter().map(ColumnBuilder::finish).collect(),
    )?)
}

// ------------------------------------------------------------------ loaders

/// The ODBC-based table loaders the paper benchmarks against.
pub struct OdbcLoader;

impl OdbcLoader {
    /// Load `table` through ONE connection into a single-partition array on
    /// the master worker — the stock-R workflow of Figure 1 ("loading even
    /// 50 GB takes close to an hour").
    pub fn load_single(
        db: &VerticaDb,
        dr: &DistributedR,
        table: &str,
        features: &[&str],
        ledger: &vdr_cluster::Ledger,
    ) -> Result<(DArray, TransferReport)> {
        let def = db.catalog().get(table)?;
        check_features(&def.schema, features)?;
        let mut load_span = vdr_obs::span("odbc.load_single");
        load_span.record("table", table);
        let client_node = dr.worker_node(0);
        let n = db.cluster().num_nodes();
        let db_rec = Arc::new(PhaseRecorder::new("odbc-1 db", PhaseKind::Pipelined, n));
        let client_rec = PhaseRecorder::new("odbc-1 client", PhaseKind::Sequential, n);

        let conn = OdbcConnection::connect(db, client_node, &client_rec);
        let sql = format!("SELECT {} FROM {table}", features.join(", "));
        // A lone R process parses single-threaded.
        let batch = conn.fetch(db, &sql, &db_rec, &client_rec, 1)?;

        let rows = batch.num_rows() as u64;
        let values = batch.num_values();
        let array = dr.darray(1).map_err(|e| DbError::Exec(e.to_string()))?;
        array
            .fill_partition_on(
                0,
                0,
                batch.num_rows(),
                features.len(),
                crate::batch_to_f64_rows(&batch)?,
            )
            .map_err(|e| DbError::Exec(e.to_string()))?;

        let profile = db.cluster().profile();
        let db_report = Arc::into_inner(db_rec)
            .expect("query released recorder")
            .finish(profile);
        let client_report = client_rec.finish(profile);
        let report = TransferReport {
            rows,
            values,
            bytes: values * 8,
            db_time: db_report.duration(),
            client_time: client_report.duration(),
            queue_time: SimDuration::ZERO,
        };
        load_span.record("rows", rows);
        load_span.set_sim_time(report.total());
        ledger.push(db_report);
        ledger.push(client_report);
        Ok((array, report))
    }

    /// Load `table` through one connection per R instance, each requesting
    /// its `1/Cᵗʰ` of the rows by `ORDER BY key LIMIT n OFFSET c·n` — the
    /// parallel-ODBC baseline of Figures 1, 12, 13. `key` must order the
    /// table deterministically (a unique id).
    pub fn load_parallel(
        db: &VerticaDb,
        dr: &DistributedR,
        table: &str,
        features: &[&str],
        key: &str,
        ledger: &vdr_cluster::Ledger,
    ) -> Result<(DArray, TransferReport)> {
        let def = db.catalog().get(table)?;
        check_features(&def.schema, features)?;
        def.schema.index_of(key)?;

        let mut load_span = vdr_obs::span("odbc.load_parallel");
        load_span.record("table", table);
        let load_span_id = load_span.id();
        let connections = dr.total_instances();
        let total_rows = db.storage().total_rows(table);
        let per_conn = total_rows.div_ceil(connections.max(1) as u64).max(1);
        let n = db.cluster().num_nodes();
        let db_rec = Arc::new(PhaseRecorder::new("odbc-N db", PhaseKind::Pipelined, n));
        let client_rec = Arc::new(PhaseRecorder::new(
            "odbc-N client",
            PhaseKind::Sequential,
            n,
        ));

        // "Data locality is destroyed": partitions land on workers by
        // connection index, unrelated to where the rows lived.
        let array = dr
            .darray(connections)
            .map_err(|e| DbError::Exec(e.to_string()))?;
        let instances_per_node = dr.workers().first().map_or(1, |w| w.instances);

        // The burst: all connections fetch concurrently; the admission
        // controller gates real concurrency just as the paper's resource
        // pools do.
        let results: Vec<Result<(usize, Batch)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..connections)
                .map(|c| {
                    let db_rec = Arc::clone(&db_rec);
                    let client_rec = Arc::clone(&client_rec);
                    let sql = format!(
                        "SELECT {} FROM {table} ORDER BY {key} LIMIT {per_conn} OFFSET {}",
                        features.join(", "),
                        c as u64 * per_conn
                    );
                    let worker = c / instances_per_node.max(1) % dr.num_workers();
                    let client_node = dr.worker_node(worker);
                    scope.spawn(move || -> Result<(usize, Batch)> {
                        let mut conn_span =
                            vdr_obs::span_with_parent("odbc.connection", load_span_id);
                        conn_span.set_node(client_node.0);
                        conn_span.record("connection", c);
                        let conn = OdbcConnection::connect(db, client_node, &client_rec);
                        // Each R instance parses on its own core, but a
                        // node's instances share its physical cores — the
                        // recorder's lane cap models that.
                        client_rec.set_lanes(client_node, instances_per_node);
                        let batch =
                            conn.fetch(db, &sql, &db_rec, &client_rec, instances_per_node)?;
                        Ok((c, batch))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("connection thread panicked"))
                .collect()
        });

        let mut rows = 0u64;
        for r in results {
            let (c, batch) = r?;
            rows += batch.num_rows() as u64;
            let worker = c / instances_per_node.max(1) % dr.num_workers();
            array
                .fill_partition_on(
                    worker,
                    c,
                    batch.num_rows(),
                    features.len(),
                    crate::batch_to_f64_rows(&batch)?,
                )
                .map_err(|e| DbError::Exec(e.to_string()))?;
        }

        let profile = db.cluster().profile();
        let waves = db.admission().waves(connections);
        let queue_time = SimDuration::from_millis(waves as f64 * profile.costs.odbc_connect_ms);
        let db_report = Arc::into_inner(db_rec)
            .expect("queries done")
            .finish(profile);
        let client_report = Arc::into_inner(client_rec)
            .expect("clients done")
            .finish(profile);
        let values = rows * features.len() as u64;
        let report = TransferReport {
            rows,
            values,
            bytes: values * 8,
            db_time: db_report.duration(),
            client_time: client_report.duration(),
            queue_time,
        };
        load_span.record("connections", connections);
        load_span.record("rows", rows);
        load_span.set_sim_time(report.total());
        ledger.push(db_report);
        ledger.push(client_report);
        ledger.push(vdr_cluster::PhaseReport::synthetic(
            "odbc-N queue",
            queue_time,
        ));
        Ok((array, report))
    }
}

/// The policy enum lives in `vft`; re-exported here for the loader docs.
#[allow(unused)]
fn _policy_doc(_: TransferPolicy) {}

#[cfg(test)]
mod tests {
    use super::*;
    use vdr_cluster::{Ledger, SimCluster};
    use vdr_columnar::Column;
    use vdr_verticadb::{Segmentation, TableDef};

    fn setup(nodes: usize, rows: i64) -> (Arc<VerticaDb>, DistributedR, Ledger) {
        let cluster = SimCluster::for_tests(nodes);
        let db = VerticaDb::new(cluster.clone());
        let schema = Schema::of(&[
            ("id", DataType::Int64),
            ("a", DataType::Float64),
            ("b", DataType::Float64),
        ]);
        db.create_table(TableDef {
            name: "t".into(),
            schema: schema.clone(),
            segmentation: Segmentation::Hash {
                column: "id".into(),
            },
        })
        .unwrap();
        let ids: Vec<i64> = (0..rows).collect();
        let batch = Batch::new(
            schema,
            vec![
                Column::from_i64(ids.clone()),
                Column::from_f64(ids.iter().map(|&i| i as f64 * 0.5).collect()),
                Column::from_f64(ids.iter().map(|&i| i as f64 * 2.0).collect()),
            ],
        )
        .unwrap();
        db.copy("t", vec![batch]).unwrap();
        let dr = DistributedR::on_all_nodes(cluster, 3).unwrap();
        (db, dr, Ledger::new())
    }

    #[test]
    fn text_roundtrip_preserves_values() {
        let schema = Schema::of(&[
            ("i", DataType::Int64),
            ("f", DataType::Float64),
            ("b", DataType::Bool),
            ("s", DataType::Varchar),
        ]);
        let rows = vec![
            vec![
                Value::Int64(-5),
                Value::Float64(1.0 / 3.0),
                Value::Bool(true),
                Value::Varchar("tab\there\nand\\slash".into()),
            ],
            vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Varchar("NULL".into()),
            ],
        ];
        let batch = Batch::from_rows(schema.clone(), &rows).unwrap();
        let text = render_rows(&batch);
        let back = parse_rows(&schema, &text).unwrap();
        assert_eq!(back.row(0), rows[0]);
        assert_eq!(back.row(1)[0], Value::Null);
        // Shortest-roundtrip float formatting keeps exact values.
        assert_eq!(back.row(0)[1], Value::Float64(1.0 / 3.0));
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        let schema = Schema::of(&[("i", DataType::Int64)]);
        assert!(parse_rows(&schema, "abc\n").is_err());
        assert!(parse_rows(&schema, "1\t2\n").is_err());
        let schema = Schema::of(&[("b", DataType::Bool)]);
        assert!(parse_rows(&schema, "x\n").is_err());
    }

    #[test]
    fn single_connection_load_is_complete_and_single_threaded() {
        let (db, dr, ledger) = setup(3, 2000);
        let (arr, report) = OdbcLoader::load_single(&db, &dr, "t", &["id", "a"], &ledger).unwrap();
        assert_eq!(report.rows, 2000);
        assert_eq!(arr.npartitions(), 1);
        assert_eq!(arr.dim(), (2000, 2));
        let (_, _, data) = arr.gather().unwrap();
        let id_sum: f64 = data.chunks(2).map(|r| r[0]).sum();
        assert_eq!(id_sum, 1999.0 * 2000.0 / 2.0);
        assert!(report.client_time.as_secs() > 0.0);
    }

    #[test]
    fn parallel_load_fetches_disjoint_ranges_exactly_once() {
        let (db, dr, ledger) = setup(3, 3000);
        let (arr, report) =
            OdbcLoader::load_parallel(&db, &dr, "t", &["id", "b"], "id", &ledger).unwrap();
        assert_eq!(report.rows, 3000);
        assert_eq!(arr.npartitions(), dr.total_instances());
        // Every id exactly once despite 9 concurrent range queries.
        let sums = arr
            .map_partitions(|_, p| (0..p.nrow).map(|r| p.row(r)[0]).sum::<f64>())
            .unwrap();
        assert_eq!(sums.iter().sum::<f64>(), 2999.0 * 3000.0 / 2.0);
        // The burst issued one query per instance.
        assert_eq!(db.admission().admitted() as usize, dr.total_instances());
        assert!(report.queue_time.as_secs() > 0.0);
    }

    #[test]
    fn parallel_odbc_rescans_the_table_per_connection() {
        // The pathology the paper calls out: C range queries re-scan the
        // table, so total DB I/O grows with C even though each client only
        // receives 1/C of the rows. Compare the ledgers' disk counters.
        let (db, dr, ledger) = setup(2, 2000);
        let (_, _) = OdbcLoader::load_parallel(&db, &dr, "t", &["a"], "id", &ledger).unwrap();
        let par_disk: u64 = ledger.reports().iter().map(|r| r.total_disk_read).sum();
        let single_ledger = Ledger::new();
        let (_, _) = OdbcLoader::load_single(&db, &dr, "t", &["a"], &single_ledger).unwrap();
        let single_disk: u64 = single_ledger
            .reports()
            .iter()
            .map(|r| r.total_disk_read)
            .sum();
        let conns = dr.total_instances() as u64;
        assert!(single_disk > 0);
        // Every one of the C ordered range queries scanned the whole table.
        assert_eq!(par_disk, single_disk * conns);
    }

    #[test]
    fn missing_key_or_feature_errors() {
        let (db, dr, ledger) = setup(2, 10);
        assert!(OdbcLoader::load_parallel(&db, &dr, "t", &["a"], "nope", &ledger).is_err());
        assert!(OdbcLoader::load_single(&db, &dr, "t", &["nope"], &ledger).is_err());
    }
}
