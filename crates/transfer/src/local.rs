//! Loading from node-local files — the `DR-disk` configuration of
//! Figure 21: "we also measure the case when data resides as files in the
//! local ext4 filesystem of each node, and Distributed R loads data directly
//! from these files".

use crate::odbc::{parse_rows, render_rows};
use crate::report::TransferReport;
use bytes::Bytes;
use vdr_cluster::{Ledger, PhaseKind, PhaseRecorder, SimDuration};
use vdr_columnar::{Batch, Schema};
use vdr_distr::{DArray, DistributedR};
use vdr_verticadb::{DbError, Result};

/// Loader for per-node local text files.
pub struct LocalLoader;

impl LocalLoader {
    /// Stage `batches[w]` as a text file on worker `w`'s local disk (setup,
    /// not part of the measured load).
    pub fn stage(dr: &DistributedR, name: &str, batches: &[Batch]) -> Result<()> {
        if batches.len() != dr.num_workers() {
            return Err(DbError::Plan(format!(
                "{} batches for {} workers",
                batches.len(),
                dr.num_workers()
            )));
        }
        for (w, batch) in batches.iter().enumerate() {
            let node = dr.cluster().node(dr.worker_node(w));
            node.disk()
                .write(format!("local/{name}.txt"), Bytes::from(render_rows(batch)));
        }
        Ok(())
    }

    /// Load the staged files into a darray, one partition per worker:
    /// local read + parse, no database and no network.
    pub fn load(
        dr: &DistributedR,
        name: &str,
        schema: &Schema,
        ledger: &Ledger,
    ) -> Result<(DArray, TransferReport)> {
        let profile = dr.cluster().profile().clone();
        let parse_cost = profile.costs.dr_disk_parse_ns_per_value;
        let rec = PhaseRecorder::new(
            "dr-disk load",
            PhaseKind::Pipelined,
            dr.cluster().num_nodes(),
        );
        let array = dr
            .darray(dr.num_workers())
            .map_err(|e| DbError::Exec(e.to_string()))?;
        let mut total_rows = 0u64;
        let mut total_values = 0u64;
        let results: Vec<(usize, Result<Batch>)> = {
            let rec = &rec;
            dr.run_on_workers(&(0..dr.num_workers()).collect::<Vec<_>>(), move |w| {
                let node = dr.cluster().node(dr.worker_node(w));
                let path = format!("local/{name}.txt");
                let raw = match node.disk().read(&path) {
                    Ok(r) => r,
                    Err(e) => return Err(DbError::from(e)),
                };
                rec.disk_read(node.id(), raw.len() as u64);
                let text = std::str::from_utf8(&raw)
                    .map_err(|_| DbError::Exec("local file not utf8".into()))?;
                let batch = parse_rows(schema, text)?;
                rec.set_lanes(node.id(), dr.workers()[w].instances);
                rec.cpu_work(node.id(), batch.num_values() as f64, parse_cost);
                Ok(batch)
            })
        };
        for (w, r) in results {
            let batch = r?;
            total_rows += batch.num_rows() as u64;
            total_values += batch.num_values();
            array
                .fill_partition_on(
                    w,
                    w,
                    batch.num_rows(),
                    batch.num_columns(),
                    crate::batch_to_f64_rows(&batch)?,
                )
                .map_err(|e| DbError::Exec(e.to_string()))?;
        }
        let report = rec.finish(dr.cluster().profile());
        let out = TransferReport {
            rows: total_rows,
            values: total_values,
            bytes: total_values * 8,
            db_time: SimDuration::ZERO,
            client_time: report.duration(),
            queue_time: SimDuration::ZERO,
        };
        ledger.push(report);
        Ok((array, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdr_cluster::SimCluster;
    use vdr_columnar::{Column, DataType};

    #[test]
    fn stage_and_load_roundtrip() {
        let cluster = SimCluster::for_tests(2);
        let dr = DistributedR::on_all_nodes(cluster, 2).unwrap();
        let schema = Schema::of(&[("x", DataType::Float64), ("y", DataType::Float64)]);
        let mk = |vals: Vec<f64>| {
            Batch::new(
                schema.clone(),
                vec![
                    Column::from_f64(vals.clone()),
                    Column::from_f64(vals.iter().map(|v| v * 10.0).collect()),
                ],
            )
            .unwrap()
        };
        LocalLoader::stage(&dr, "d", &[mk(vec![1.0, 2.0]), mk(vec![3.0])]).unwrap();
        let ledger = Ledger::new();
        let (arr, report) = LocalLoader::load(&dr, "d", &schema, &ledger).unwrap();
        assert_eq!(report.rows, 3);
        assert_eq!(arr.dim(), (3, 2));
        assert_eq!(arr.partition_sizes(), vec![(2, 2), (1, 2)]);
        let (_, _, data) = arr.gather().unwrap();
        assert_eq!(data, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        assert!(report.client_time.as_secs() > 0.0);
        assert!(report.db_time.is_zero());
    }

    #[test]
    fn wrong_partition_count_and_missing_file() {
        let cluster = SimCluster::for_tests(2);
        let dr = DistributedR::on_all_nodes(cluster, 1).unwrap();
        let schema = Schema::of(&[("x", DataType::Float64)]);
        assert!(LocalLoader::stage(&dr, "d", &[]).is_err());
        let ledger = Ledger::new();
        assert!(LocalLoader::load(&dr, "missing", &schema, &ledger).is_err());
    }
}
