//! Transfer outcome summary.

use vdr_cluster::SimDuration;

/// What a load accomplished and what it cost in simulated time. The split
/// into a database part and a client (R) part mirrors Figure 14's breakdown:
/// "The DB part includes time taken by Vertica to read data from disk,
/// serialize, and send it across the network. The R part includes the time
/// taken by Distributed R instances to receive data, buffer it, and finally
/// convert to an R object."
#[derive(Debug, Clone, serde::Serialize)]
pub struct TransferReport {
    /// Rows delivered into the client runtime.
    pub rows: u64,
    /// Scalar values delivered (rows × columns).
    pub values: u64,
    /// Raw (binary) bytes represented by the delivered data.
    pub bytes: u64,
    /// Database-side simulated time (disk, export CPU, wire — pipelined).
    pub db_time: SimDuration,
    /// Client-side simulated time (buffer + convert to R objects).
    pub client_time: SimDuration,
    /// Receive-side waiting. For ODBC bursts this is connections queuing on
    /// admission control. For VFT it is the receive pools' idle window while
    /// the export query was still producing: `db_time` minus the conversion
    /// work that pipelined under it, clamped at zero when conversion is the
    /// bottleneck.
    pub queue_time: SimDuration,
}

impl TransferReport {
    /// End-to-end simulated load time.
    pub fn total(&self) -> SimDuration {
        self.db_time + self.client_time + self.queue_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let r = TransferReport {
            rows: 10,
            values: 20,
            bytes: 160,
            db_time: SimDuration::from_secs(5.0),
            client_time: SimDuration::from_secs(3.0),
            queue_time: SimDuration::from_secs(2.0),
        };
        assert_eq!(r.total().as_secs(), 10.0);
    }
}
