//! # vdr-transfer — moving table data from the database into Distributed R
//!
//! Implements both sides of the paper's central comparison:
//!
//! * [`odbc`] — the baseline everyone suffers with (Section 1.1, Figure 1):
//!   row-oriented, text-encoded ODBC connections. A single connection
//!   bottlenecks on one client parser; hundreds of parallel connections
//!   issue `ORDER BY … LIMIT/OFFSET` range queries that force repeated
//!   scans, destroy locality, and queue behind the database's admission
//!   control.
//! * [`vft`] — **Vertica Fast Transfer** (Section 3): the Distributed R
//!   master issues *one* SQL query invoking the `ExportToDistributedR`
//!   transform function; UDx instances on each database node read only
//!   node-local segment containers, buffer rows, and stream binary columnar
//!   blocks to the Distributed R workers' receive pools, under a
//!   locality-preserving or uniform (round-robin) distribution policy.
//! * [`local`] — loading from per-node local files (the `DR-disk`
//!   configuration of Figure 21).
//!
//! Every transfer really moves the bytes (receivers decode exactly what the
//! senders produced) and charges one or two phases to a caller-supplied
//! [`vdr_cluster::Ledger`]; see `vdr-cluster::profile` for the calibrated
//! cost constants.

pub mod local;
pub mod model;
pub mod odbc;
pub mod report;
pub mod train;
pub mod vft;

pub use local::LocalLoader;
pub use model::{ClusterShape, TableShape};
pub use odbc::{OdbcConnection, OdbcLoader};
pub use report::TransferReport;
pub use train::{glm_while_loading, kmeans_while_loading, GlmLoadFit, KmeansLoadFit};
pub use vft::{install_export_function, BatchObserver, FastTransfer, TransferPolicy};

use vdr_verticadb::{DbError, Result};

/// Numeric feature extraction shared by all loaders: gather the columns of a
/// batch into a pre-sized row-major `f64` slice. Column-at-a-time (strided
/// writes over `Cow` column views) instead of row-at-a-time pushes: no
/// per-row bounds checks on a growing vector, no per-column `Vec`
/// materialization for columns that are already `f64`.
pub(crate) fn gather_f64_rows(batch: &vdr_columnar::Batch, out: &mut [f64]) -> Result<()> {
    let nrow = batch.num_rows();
    let ncol = batch.num_columns();
    debug_assert_eq!(out.len(), nrow * ncol, "destination slice mis-sized");
    for (c, col) in batch.columns().iter().enumerate() {
        let vals = col.to_f64_cow();
        for (r, v) in vals.iter().enumerate() {
            out[r * ncol + c] = *v;
        }
    }
    Ok(())
}

/// [`gather_f64_rows`] into a fresh allocation, for loaders that hand the
/// matrix straight to `fill_partition_on`.
pub(crate) fn batch_to_f64_rows(batch: &vdr_columnar::Batch) -> Result<Vec<f64>> {
    let mut out = vec![0.0; batch.num_rows() * batch.num_columns()];
    gather_f64_rows(batch, &mut out)?;
    Ok(out)
}

/// Validate that requested feature columns exist and are numeric.
pub(crate) fn check_features(schema: &vdr_columnar::Schema, features: &[&str]) -> Result<()> {
    if features.is_empty() {
        return Err(DbError::Plan("no feature columns requested".into()));
    }
    for f in features {
        let idx = schema.index_of(f)?;
        if schema.field(idx).dtype == vdr_columnar::DataType::Varchar {
            return Err(DbError::Plan(format!(
                "column '{f}' is VARCHAR; darrays hold numeric data (use db2dframe)"
            )));
        }
    }
    Ok(())
}
