#![allow(clippy::needless_range_loop)]
//! Figure 20 bench: the same K-means over the Distributed R stack and the
//! Spark comparator stack, same data, same initial centers.

mod common;

use common::criterion;
use criterion::Criterion;
use std::sync::Arc;
use vdr_cluster::{Ledger, SimCluster};
use vdr_distr::DistributedR;
use vdr_ml::kmeans::{assign_partial, merge_partials};
use vdr_sparksim::{mllib::spark_kmeans_with_centers, HdfsSim, SparkContext};
use vdr_workloads::gaussian_mixture;

fn bench(c: &mut Criterion) {
    let cluster = SimCluster::for_tests(3);
    let true_centers: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 12.0; 4]).collect();
    let (pts, _) = gaussian_mixture(4_000, &true_centers, 0.4, 2); // 24k×4
    let init: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 12.0 + 1.0; 4]).collect();

    // Distributed R side.
    let dr = DistributedR::on_all_nodes(cluster.clone(), 2).unwrap();
    let x = dr.darray(3).unwrap();
    let per = pts.len() / 4 / 3;
    for part in 0..3 {
        x.fill_partition(
            part,
            per,
            4,
            pts[part * per * 4..(part + 1) * per * 4].to_vec(),
        )
        .unwrap();
    }
    // Spark side: same rows via HDFS.
    let hdfs = Arc::new(HdfsSim::new(cluster.clone(), 3));
    hdfs.put_matrix("pts", &pts[..per * 3 * 4], 4, 1024);
    let sc = SparkContext::new(cluster.clone(), hdfs, 2);
    let (matrix, _) = sc.load_matrix("pts", &Ledger::new()).unwrap();

    let mut g = c.benchmark_group("fig20_kmeans_stacks");
    let flat_init: Vec<f64> = init.iter().flatten().copied().collect();
    g.bench_function("distributed_r_5_iterations", |b| {
        b.iter(|| {
            let mut cs = flat_init.clone();
            for _ in 0..5 {
                let partials = x
                    .map_partitions(|_, p| assign_partial(&p.data, 4, &cs))
                    .unwrap();
                let merged =
                    vdr_ml::reduce::tree_merge(partials, |a, b| merge_partials(a, &b)).unwrap();
                for k in 0..6 {
                    if merged.counts[k] > 0 {
                        let n = merged.counts[k] as f64;
                        for (c, s) in cs[k * 4..(k + 1) * 4]
                            .iter_mut()
                            .zip(&merged.sums[k * 4..(k + 1) * 4])
                        {
                            *c = s / n;
                        }
                    }
                }
            }
            assert!(cs[0].is_finite());
        })
    });
    g.bench_function("spark_5_iterations", |b| {
        b.iter(|| {
            let m = spark_kmeans_with_centers(&cluster, &matrix, init.clone(), 5).unwrap();
            assert!(m.total_withinss.is_finite());
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
