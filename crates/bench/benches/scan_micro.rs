//! Scan-path micro-benchmarks: narrow projection over a wide table,
//! selective vs non-selective WHERE predicates, and compressed execution
//! over low-cardinality / sorted columns (RLE predicates, dictionary
//! GROUP BY, late materialization).
//!
//! Uses only the public SQL surface so the identical file can be timed
//! against older commits for A/B comparisons (see BENCH_scan.json).

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::SimCluster;
use vdr_columnar::{Batch, Column, DataType, Schema, Value};
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

const ROWS: usize = 40_000;
const WIDE_COLS: usize = 16;
const BATCHES: usize = 4;

/// A 16-float-column table (plus id), loaded in 4 chunks so each node holds
/// several containers.
fn load_wide(db: &VerticaDb) {
    let mut fields = vec![("id".to_string(), DataType::Int64)];
    for i in 0..WIDE_COLS {
        fields.push((format!("c{i:02}"), DataType::Float64));
    }
    let schema = Schema::of(
        &fields
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    db.create_table(TableDef {
        name: "wide".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .unwrap();
    let chunk = ROWS / BATCHES;
    for b in 0..BATCHES {
        let lo = (b * chunk) as i64;
        let hi = lo + chunk as i64;
        let mut cols = vec![Column::from_i64((lo..hi).collect())];
        for c in 0..WIDE_COLS {
            cols.push(Column::from_f64(
                (lo..hi).map(|i| i as f64 * (c + 1) as f64).collect(),
            ));
        }
        db.copy("wide", vec![Batch::new(schema.clone(), cols).unwrap()])
            .unwrap();
    }
}

/// A low-cardinality table: `grp` holds 16 sorted values in long runs (so
/// it RLE-encodes), `tag` holds 8 distinct strings (so it
/// dictionary-encodes), and `x`/`y` are per-row float payloads that stay
/// Plain and must be late-materialized behind the predicates.
fn load_lowcard(db: &VerticaDb) {
    const TAGS: [&str; 8] = [
        "alpha", "bravo", "delta", "echo", "golf", "hotel", "kilo", "lima",
    ];
    let schema = Schema::of(&[
        ("grp", DataType::Int64),
        ("tag", DataType::Varchar),
        ("x", DataType::Float64),
        ("y", DataType::Float64),
    ]);
    db.create_table(TableDef {
        name: "lowcard".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .unwrap();
    let chunk = ROWS / BATCHES;
    let run = ROWS / 16;
    for b in 0..BATCHES {
        let lo = b * chunk;
        let hi = lo + chunk;
        let cols = vec![
            Column::from_i64((lo..hi).map(|i| (i / run) as i64).collect()),
            Column::from_strings((lo..hi).map(|i| TAGS[(i / 5) % 8]).collect()),
            Column::from_f64((lo..hi).map(|i| i as f64 * 0.5).collect()),
            Column::from_f64((lo..hi).map(|i| (i % 97) as f64).collect()),
        ];
        db.copy("lowcard", vec![Batch::new(schema.clone(), cols).unwrap()])
            .unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let db = VerticaDb::new(SimCluster::for_tests(3));
    load_wide(&db);
    load_lowcard(&db);
    let expected_sum = (0..ROWS).map(|i| i as f64).sum::<f64>();

    // Narrow projection: 1 of 17 columns referenced.
    c.bench_function("scan_narrow_projection_16col_40k", |b| {
        b.iter(|| {
            let out = db.query("SELECT sum(c00) FROM wide").unwrap();
            assert_eq!(out.batch.row(0)[0], Value::Float64(expected_sum));
        })
    });

    // Selective predicate: ~1% of rows pass.
    let cutoff = (ROWS as f64) * 0.99;
    let selective = format!("SELECT count(*) FROM wide WHERE c00 > {cutoff}");
    c.bench_function("scan_where_selective_40k", |b| {
        b.iter(|| {
            let out = db.query(&selective).unwrap();
            let Value::Int64(n) = out.batch.row(0)[0] else {
                panic!("count must be int");
            };
            assert!(n > 0 && (n as usize) < ROWS / 50);
        })
    });

    // Non-selective predicate: every row passes.
    c.bench_function("scan_where_nonselective_40k", |b| {
        b.iter(|| {
            let out = db
                .query("SELECT count(*) FROM wide WHERE c00 >= 0")
                .unwrap();
            assert_eq!(out.batch.row(0)[0], Value::Int64(ROWS as i64));
        })
    });

    // Low-cardinality RLE predicate with late materialization: the WHERE
    // evaluates once per run on the encoded `grp`, then only the surviving
    // 1/16th of `x` is expanded.
    let run = ROWS / 16;
    let expected_grp7: f64 = (7 * run..8 * run).map(|i| i as f64 * 0.5).sum();
    c.bench_function("scan_lowcard_rle_where_40k", |b| {
        b.iter(|| {
            let out = db
                .query("SELECT sum(x) FROM lowcard WHERE grp = 7")
                .unwrap();
            let Value::Float64(s) = out.batch.row(0)[0] else {
                panic!("sum must be float");
            };
            assert!((s - expected_grp7).abs() < 1e-6 * expected_grp7);
        })
    });

    // Sorted-column range predicate: `grp` is globally sorted, so the
    // encoded comparison touches a handful of runs and count(*) needs no
    // payload materialization at all.
    c.bench_function("scan_sorted_rle_where_40k", |b| {
        b.iter(|| {
            let out = db
                .query("SELECT count(*) FROM lowcard WHERE grp < 2")
                .unwrap();
            assert_eq!(out.batch.row(0)[0], Value::Int64((2 * run) as i64));
        })
    });

    // Dictionary GROUP BY: grouping runs over the 8 dictionary codes with a
    // dense per-code table instead of hashing 40k strings.
    c.bench_function("scan_dict_group_by_40k", |b| {
        b.iter(|| {
            let out = db
                .query("SELECT tag, count(*), sum(y) FROM lowcard GROUP BY tag")
                .unwrap();
            assert_eq!(out.batch.num_rows(), 8);
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
