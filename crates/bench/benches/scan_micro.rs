//! Scan-path micro-benchmarks: narrow projection over a wide table, and
//! selective vs non-selective WHERE predicates.
//!
//! Uses only the public SQL surface so the identical file can be timed
//! against older commits for A/B comparisons (see BENCH_scan.json).

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::SimCluster;
use vdr_columnar::{Batch, Column, DataType, Schema, Value};
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

const ROWS: usize = 40_000;
const WIDE_COLS: usize = 16;
const BATCHES: usize = 4;

/// A 16-float-column table (plus id), loaded in 4 chunks so each node holds
/// several containers.
fn load_wide(db: &VerticaDb) {
    let mut fields = vec![("id".to_string(), DataType::Int64)];
    for i in 0..WIDE_COLS {
        fields.push((format!("c{i:02}"), DataType::Float64));
    }
    let schema = Schema::of(
        &fields
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    db.create_table(TableDef {
        name: "wide".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .unwrap();
    let chunk = ROWS / BATCHES;
    for b in 0..BATCHES {
        let lo = (b * chunk) as i64;
        let hi = lo + chunk as i64;
        let mut cols = vec![Column::from_i64((lo..hi).collect())];
        for c in 0..WIDE_COLS {
            cols.push(Column::from_f64(
                (lo..hi).map(|i| i as f64 * (c + 1) as f64).collect(),
            ));
        }
        db.copy("wide", vec![Batch::new(schema.clone(), cols).unwrap()])
            .unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let db = VerticaDb::new(SimCluster::for_tests(3));
    load_wide(&db);
    let expected_sum = (0..ROWS).map(|i| i as f64).sum::<f64>();

    // Narrow projection: 1 of 17 columns referenced.
    c.bench_function("scan_narrow_projection_16col_40k", |b| {
        b.iter(|| {
            let out = db.query("SELECT sum(c00) FROM wide").unwrap();
            assert_eq!(out.batch.row(0)[0], Value::Float64(expected_sum));
        })
    });

    // Selective predicate: ~1% of rows pass.
    let cutoff = (ROWS as f64) * 0.99;
    let selective = format!("SELECT count(*) FROM wide WHERE c00 > {cutoff}");
    c.bench_function("scan_where_selective_40k", |b| {
        b.iter(|| {
            let out = db.query(&selective).unwrap();
            let Value::Int64(n) = out.batch.row(0)[0] else {
                panic!("count must be int");
            };
            assert!(n > 0 && (n as usize) < ROWS / 50);
        })
    });

    // Non-selective predicate: every row passes.
    c.bench_function("scan_where_nonselective_40k", |b| {
        b.iter(|| {
            let out = db
                .query("SELECT count(*) FROM wide WHERE c00 >= 0")
                .unwrap();
            assert_eq!(out.batch.row(0)[0], Value::Int64(ROWS as i64));
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
