//! Training micro-benchmarks backing `BENCH_train.json` (interleaved A/B).
//!
//! Deliberately restricted to the public surface that already existed before
//! the blocked-kernel work (`hpdglm` / `hpdkmeans` with struct-update option
//! literals), so this *identical* file compiles and measures the same
//! workloads against older commits. The A/B protocol builds the pre-change
//! tree in a throwaway worktree, copies this file in, and alternates runs.
//!
//! Shapes mirror the paper's training workloads: narrow feature matrices
//! (Figure 18's 6-column regression, Figure 17's 10-d clustering) where the
//! per-row model update is cheap and memory traffic dominates, and wide-`p`
//! shapes where the `XᵀWX` / center-distance kernels dominate and blocking
//! pays off most.

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::SimCluster;
use vdr_distr::{DArray, DistributedR};
use vdr_ml::{hpdglm, hpdkmeans, Family, GlmOptions, KmeansInit, KmeansOptions};
use vdr_workloads::{gaussian_mixture, linear_data, logistic_data};

const PARTS: usize = 4;

/// Spread row-major `(x, y)` across a `PARTS`-partition darray pair.
fn darray_pair(dr: &DistributedR, x: &[f64], y: &[f64], d: usize) -> (DArray, DArray) {
    let rows = y.len() / PARTS;
    let xa = dr.darray(PARTS).unwrap();
    for part in 0..PARTS {
        xa.fill_partition(
            part,
            rows,
            d,
            x[part * rows * d..(part + 1) * rows * d].to_vec(),
        )
        .unwrap();
    }
    let ya = xa.clone_structure(1, 0.0).unwrap();
    for part in 0..PARTS {
        ya.fill_partition_on(
            ya.worker_of(part).unwrap(),
            part,
            rows,
            1,
            y[part * rows..(part + 1) * rows].to_vec(),
        )
        .unwrap();
    }
    (xa, ya)
}

/// Row-major points only (for k-means).
fn darray_points(dr: &DistributedR, pts: &[f64], d: usize) -> DArray {
    let rows = pts.len() / d / PARTS;
    let xa = dr.darray(PARTS).unwrap();
    for part in 0..PARTS {
        xa.fill_partition(
            part,
            rows,
            d,
            pts[part * rows * d..(part + 1) * rows * d].to_vec(),
        )
        .unwrap();
    }
    xa
}

fn glm_benches(c: &mut Criterion) {
    let dr = DistributedR::on_all_nodes(SimCluster::for_tests(1), PARTS).unwrap();
    let mut g = c.benchmark_group("train_glm");

    // Narrow: Figure 18's regression shape. Gaussian/identity needs exactly
    // one accumulate pass, so this times the raw XᵀX / Xᵀz sweep.
    let (x, y) = linear_data(40_000, 1.0, &[2.0, -1.0, 0.5, 0.25, -0.125, 3.0], 0.01, 9);
    let (xa, ya) = darray_pair(&dr, &x, &y, 6);
    g.bench_function("gaussian_narrow_40k_d6", |b| {
        b.iter(|| {
            let m = hpdglm(&xa, &ya, Family::Gaussian, &GlmOptions::default()).unwrap();
            assert!(m.converged);
        })
    });

    // Wide p: 48 features. The p×p normal-equation accumulation dominates;
    // this is the shape where kernel blocking matters most.
    let beta_wide: Vec<f64> = (0..48).map(|i| ((i % 7) as f64 - 3.0) / 4.0).collect();
    let (x, y) = linear_data(10_000, 0.5, &beta_wide, 0.05, 21);
    let (xa, ya) = darray_pair(&dr, &x, &y, 48);
    g.bench_function("gaussian_wide_10k_d48", |b| {
        b.iter(|| {
            let m = hpdglm(&xa, &ya, Family::Gaussian, &GlmOptions::default()).unwrap();
            assert!(m.converged);
        })
    });

    // Binomial narrow: several IRLS iterations, each a full mu/w/z sweep
    // plus the weighted accumulation.
    let (x, y) = logistic_data(20_000, 0.3, &[1.2, -0.8, 0.5, 0.9, -1.1, 0.3], 7);
    let (xa, ya) = darray_pair(&dr, &x, &y, 6);
    g.bench_function("binomial_narrow_20k_d6", |b| {
        b.iter(|| {
            let m = hpdglm(&xa, &ya, Family::Binomial, &GlmOptions::default()).unwrap();
            assert!(m.converged);
        })
    });

    // Binomial wide p: IRLS iterations over a 32-wide weighted XᵀWX.
    let beta_wide: Vec<f64> = (0..32).map(|i| ((i % 5) as f64 - 2.0) / 8.0).collect();
    let (x, y) = logistic_data(6_000, 0.2, &beta_wide, 11);
    let (xa, ya) = darray_pair(&dr, &x, &y, 32);
    g.bench_function("binomial_wide_6k_d32", |b| {
        b.iter(|| {
            let m = hpdglm(&xa, &ya, Family::Binomial, &GlmOptions::default()).unwrap();
            assert!(m.converged);
        })
    });
    g.finish();
}

fn kmeans_benches(c: &mut Criterion) {
    let dr = DistributedR::on_all_nodes(SimCluster::for_tests(1), PARTS).unwrap();
    let mut g = c.benchmark_group("train_kmeans");

    // Narrow: Figure 17's clustering shape (50k×10, k=20), well-separated
    // blobs so the iteration count is stable across kernel variants.
    let centers: Vec<Vec<f64>> = (0..20)
        .map(|i| {
            (0..10)
                .map(|j| (((i * 7 + j * 3) % 19) * 10) as f64)
                .collect()
        })
        .collect();
    let (pts, _) = gaussian_mixture(2_500, &centers, 0.5, 1);
    let xa = darray_points(&dr, &pts, 10);
    g.bench_function("kmeans_narrow_50k_d10_k20", |b| {
        b.iter(|| {
            let opts = KmeansOptions {
                k: 20,
                max_iterations: 12,
                init: KmeansInit::Random,
                ..KmeansOptions::default()
            };
            let m = hpdkmeans(&xa, &opts).unwrap();
            assert_eq!(m.centers.len(), 20);
        })
    });

    // Wide: 32-d points, k=16 — the distance kernel is k·d flops per row and
    // dominates end-to-end time.
    let centers: Vec<Vec<f64>> = (0..16)
        .map(|i| {
            (0..32)
                .map(|j| (((i * 11 + j * 5) % 23) * 8) as f64)
                .collect()
        })
        .collect();
    let (pts, _) = gaussian_mixture(1_000, &centers, 0.5, 3);
    let xa = darray_points(&dr, &pts, 32);
    g.bench_function("kmeans_wide_16k_d32_k16", |b| {
        b.iter(|| {
            let opts = KmeansOptions {
                k: 16,
                max_iterations: 12,
                init: KmeansInit::Random,
                ..KmeansOptions::default()
            };
            let m = hpdkmeans(&xa, &opts).unwrap();
            assert_eq!(m.centers.len(), 16);
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    glm_benches(&mut c);
    kmeans_benches(&mut c);
    c.final_summary();
}
