//! Observability-overhead micro-benchmark: the instrumented scan and
//! in-database predict hot paths, timed with recording off (`VDR_OBS=off`
//! semantics) and with the default `summary` verbosity (counters, gauges,
//! and histograms live). The A/B pairs feed BENCH_obs.json, whose gate is
//! that `summary` regresses the `off` arm by < 2%.
//!
//! Uses only the public SQL surface, so the identical file times older
//! commits for interleaved A/B runs.

mod common;

use criterion::Criterion;
use vdr_cluster::{NodeId, PhaseKind, PhaseRecorder, SimCluster};
use vdr_columnar::{Batch, Column, DataType, Schema, Value};
use vdr_core::{register_prediction_functions, Model};
use vdr_ml::models::KmeansModel;
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};
use vdr_workloads::transfer_table;

const ROWS: usize = 40_000;
const WIDE_COLS: usize = 16;

/// The scan_micro wide table: 16 float columns plus id, in 4 chunks.
fn load_wide(db: &VerticaDb) {
    let mut fields = vec![("id".to_string(), DataType::Int64)];
    for i in 0..WIDE_COLS {
        fields.push((format!("c{i:02}"), DataType::Float64));
    }
    let schema = Schema::of(
        &fields
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    db.create_table(TableDef {
        name: "wide".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .unwrap();
    let chunk = ROWS / 4;
    for b in 0..4 {
        let lo = (b * chunk) as i64;
        let hi = lo + chunk as i64;
        let mut cols = vec![Column::from_i64((lo..hi).collect())];
        for c in 0..WIDE_COLS {
            cols.push(Column::from_f64(
                (lo..hi).map(|i| i as f64 * (c + 1) as f64).collect(),
            ));
        }
        db.copy("wide", vec![Batch::new(schema.clone(), cols).unwrap()])
            .unwrap();
    }
}

/// Time `f` under both verbosities as `<name>/off` and `<name>/summary`.
fn ab(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    for verbosity in [vdr_obs::Verbosity::Off, vdr_obs::Verbosity::Summary] {
        let arm = match verbosity {
            vdr_obs::Verbosity::Off => "off",
            _ => "summary",
        };
        let _v = vdr_obs::verbosity_guard(verbosity);
        c.bench_function(format!("{name}/{arm}"), |b| b.iter(&mut f));
    }
}

/// Time `f` under `summary` verbosity with the data-collector sampler
/// disabled (`<name>/sampler_off`) and enabled (`<name>/sampler_on`). The
/// delta is the cost of one statement-boundary tick: restricting the
/// already-computed metrics delta per node, the ledger/cache readings, and
/// the ring pushes.
fn ab_sampler(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    let _v = vdr_obs::verbosity_guard(vdr_obs::Verbosity::Summary);
    let dc = vdr_obs::global().dc();
    for arm in ["sampler_off", "sampler_on"] {
        dc.set_enabled(arm == "sampler_on");
        c.bench_function(format!("{name}/{arm}"), |b| b.iter(&mut f));
    }
    dc.set_enabled(true);
}

fn bench(c: &mut Criterion) {
    let db = VerticaDb::new(SimCluster::for_tests(3));
    load_wide(&db);
    let expected_sum = (0..ROWS).map(|i| i as f64).sum::<f64>();
    ab(c, "obs_scan_sum_16col_40k", || {
        let out = db.query("SELECT sum(c00) FROM wide").unwrap();
        assert_eq!(out.batch.row(0)[0], Value::Float64(expected_sum));
    });
    ab_sampler(c, "obs_scan_sampler_40k", || {
        let out = db.query("SELECT sum(c00) FROM wide").unwrap();
        assert_eq!(out.batch.row(0)[0], Value::Float64(expected_sum));
    });

    let pdb = VerticaDb::new(SimCluster::for_tests(3));
    register_prediction_functions(&pdb);
    transfer_table(
        &pdb,
        "t",
        30_000,
        Segmentation::Hash {
            column: "id".into(),
        },
        4,
    )
    .unwrap();
    let model = Model::Kmeans(KmeansModel {
        centers: (0..10).map(|i| vec![i as f64 * 150.0 - 700.0; 5]).collect(),
        iterations: 1,
        total_withinss: 0.0,
    });
    let rec = PhaseRecorder::new("save", PhaseKind::Sequential, 3);
    pdb.models()
        .save(
            NodeId(0),
            "km",
            "dbadmin",
            "kmeans",
            "bench",
            model.to_bytes(),
            &rec,
        )
        .unwrap();
    ab(c, "obs_kmeans_predict_30k", || {
        let out = pdb
            .query(
                "SELECT KmeansPredict(a, b, c, d, e USING PARAMETERS model='km') \
                 OVER (PARTITION BEST) FROM t",
            )
            .unwrap();
        assert_eq!(out.batch.num_rows(), 30_000);
    });
}

fn main() {
    let mut c = common::criterion().sample_size(30);
    bench(&mut c);
    c.final_summary();
}
