//! VFT transfer-path micro-benchmarks: end-to-end `db2darray`/`db2dframe`
//! under both distribution policies, on the standard 6-column table and on a
//! wide 17-column one (where per-block conversion cost dominates).
//!
//! Uses only the public transfer surface so the identical file can be timed
//! against older commits for A/B comparisons (see BENCH_transfer.json).

mod common;

use common::{criterion, transfer_bench, COLS};
use criterion::Criterion;
use vdr_cluster::Ledger;
use vdr_columnar::{Batch, Column, DataType, Schema};
use vdr_transfer::TransferPolicy;
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

const ROWS: usize = 40_000;
const WIDE_COLS: usize = 16;
const BATCHES: usize = 4;

/// A 16-float-column table (plus id), loaded in 4 chunks so each node holds
/// several containers.
fn load_wide(db: &VerticaDb) {
    let mut fields = vec![("id".to_string(), DataType::Int64)];
    for i in 0..WIDE_COLS {
        fields.push((format!("c{i:02}"), DataType::Float64));
    }
    let schema = Schema::of(
        &fields
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    db.create_table(TableDef {
        name: "wide".into(),
        schema: schema.clone(),
        segmentation: Segmentation::Hash {
            column: "id".into(),
        },
    })
    .unwrap();
    let chunk = ROWS / BATCHES;
    for b in 0..BATCHES {
        let lo = (b * chunk) as i64;
        let hi = lo + chunk as i64;
        let mut cols = vec![Column::from_i64((lo..hi).collect())];
        for c in 0..WIDE_COLS {
            cols.push(Column::from_f64(
                (lo..hi).map(|i| i as f64 * (c + 1) as f64).collect(),
            ));
        }
        db.copy("wide", vec![Batch::new(schema.clone(), cols).unwrap()])
            .unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let tb = transfer_bench(3, ROWS, 4);
    load_wide(&tb.db);
    let wide_cols: Vec<String> = std::iter::once("id".to_string())
        .chain((0..WIDE_COLS).map(|i| format!("c{i:02}")))
        .collect();
    let wide_refs: Vec<&str> = wide_cols.iter().map(String::as_str).collect();

    // Narrow numeric load over the standard 6-column table.
    c.bench_function("vft_darray_6col_40k_locality", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) = tb
                .vft
                .db2darray(
                    &tb.db,
                    &tb.dr,
                    "t",
                    &COLS,
                    TransferPolicy::Locality,
                    &ledger,
                )
                .unwrap();
            assert_eq!(report.rows, ROWS as u64);
            drop(arr);
        })
    });

    // Wide loads: 17 columns per row stress encode/decode and assembly.
    c.bench_function("vft_darray_wide17_40k_locality", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) = tb
                .vft
                .db2darray(
                    &tb.db,
                    &tb.dr,
                    "wide",
                    &wide_refs,
                    TransferPolicy::Locality,
                    &ledger,
                )
                .unwrap();
            assert_eq!(report.rows, ROWS as u64);
            drop(arr);
        })
    });

    c.bench_function("vft_darray_wide17_40k_uniform", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) = tb
                .vft
                .db2darray(
                    &tb.db,
                    &tb.dr,
                    "wide",
                    &wide_refs,
                    TransferPolicy::Uniform,
                    &ledger,
                )
                .unwrap();
            assert_eq!(report.rows, ROWS as u64);
            drop(arr);
        })
    });

    // Typed (dframe) loads keep per-column types through assembly.
    c.bench_function("vft_dframe_wide17_40k_locality", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (frame, report) = tb
                .vft
                .db2dframe(
                    &tb.db,
                    &tb.dr,
                    "wide",
                    &wide_refs,
                    TransferPolicy::Locality,
                    &ledger,
                )
                .unwrap();
            assert_eq!(report.rows, ROWS as u64);
            drop(frame);
        })
    });

    c.bench_function("vft_dframe_6col_40k_uniform", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (frame, report) = tb
                .vft
                .db2dframe(&tb.db, &tb.dr, "t", &COLS, TransferPolicy::Uniform, &ledger)
                .unwrap();
            assert_eq!(report.rows, ROWS as u64);
            drop(frame);
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
