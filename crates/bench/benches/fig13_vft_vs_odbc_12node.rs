//! Figure 13 bench: the larger-cluster variant of fig12 (4 simulated nodes
//! standing in for the paper's 12).

mod common;

use common::{criterion, transfer_bench, COLS};
use criterion::Criterion;
use vdr_cluster::Ledger;
use vdr_transfer::{OdbcLoader, TransferPolicy};

fn bench(c: &mut Criterion) {
    let tb = transfer_bench(4, 12_000, 4);
    let mut g = c.benchmark_group("fig13_vft_vs_odbc_larger");
    g.bench_function("vft_locality", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) = tb
                .vft
                .db2darray(
                    &tb.db,
                    &tb.dr,
                    "t",
                    &COLS,
                    TransferPolicy::Locality,
                    &ledger,
                )
                .unwrap();
            assert_eq!(report.rows, 12_000);
            drop(arr);
        })
    });
    g.bench_function("odbc_parallel", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) =
                OdbcLoader::load_parallel(&tb.db, &tb.dr, "t", &COLS, "id", &ledger).unwrap();
            assert_eq!(report.rows, 12_000);
            drop(arr);
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
