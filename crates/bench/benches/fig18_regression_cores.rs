//! Figure 18 bench: QR decomposition (stock R stand-in) vs distributed
//! Newton–Raphson on identical data.

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::SimCluster;
use vdr_distr::DistributedR;
use vdr_ml::serial::serial_lm;
use vdr_ml::{hpdglm, Family, GlmOptions};
use vdr_workloads::linear_data;

fn bench(c: &mut Criterion) {
    let (x, y) = linear_data(40_000, 1.0, &[2.0, -1.0, 0.5, 0.25, -0.125, 3.0], 0.01, 9);
    let mut g = c.benchmark_group("fig18_regression");
    g.bench_function("stock_r_qr_40k_rows", |b| {
        b.iter(|| {
            let m = serial_lm(&x, 6, &y).unwrap();
            assert!(m.converged);
        })
    });
    let dr = DistributedR::on_all_nodes(SimCluster::for_tests(1), 4).unwrap();
    let xa = dr.darray(4).unwrap();
    let rows = 10_000;
    for part in 0..4 {
        xa.fill_partition(
            part,
            rows,
            6,
            x[part * rows * 6..(part + 1) * rows * 6].to_vec(),
        )
        .unwrap();
    }
    let ya = xa.clone_structure(1, 0.0).unwrap();
    for part in 0..4 {
        ya.fill_partition_on(
            ya.worker_of(part).unwrap(),
            part,
            rows,
            1,
            y[part * rows..(part + 1) * rows].to_vec(),
        )
        .unwrap();
    }
    g.bench_function("distributed_newton_raphson_40k_rows", |b| {
        b.iter(|| {
            let m = hpdglm(&xa, &ya, Family::Gaussian, &GlmOptions::default()).unwrap();
            assert!(m.converged);
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
