//! Figure 1 bench: extracting a table through one vs many ODBC connections
//! (real small-scale runs; paper-scale projections live in the `figures`
//! binary).

mod common;

use common::{criterion, transfer_bench, COLS};
use criterion::Criterion;
use vdr_cluster::Ledger;
use vdr_transfer::OdbcLoader;

fn bench(c: &mut Criterion) {
    let tb = transfer_bench(3, 6_000, 3);
    let mut g = c.benchmark_group("fig01_odbc_extract");
    g.bench_function("single_connection", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) =
                OdbcLoader::load_single(&tb.db, &tb.dr, "t", &COLS, &ledger).unwrap();
            assert_eq!(report.rows, 6_000);
            drop(arr);
        })
    });
    g.bench_function("parallel_connections", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) =
                OdbcLoader::load_parallel(&tb.db, &tb.dr, "t", &COLS, "id", &ledger).unwrap();
            assert_eq!(report.rows, 6_000);
            drop(arr);
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
