//! Figure 21 bench: the three load paths — VFT out of the database, Spark
//! off HDFS, and Distributed R off local files.

mod common;

use common::{criterion, transfer_bench, COLS};
use criterion::Criterion;
use std::sync::Arc;
use vdr_cluster::Ledger;
use vdr_columnar::{Batch, Column, DataType, Schema};
use vdr_sparksim::{HdfsSim, SparkContext};
use vdr_transfer::{LocalLoader, TransferPolicy};

fn bench(c: &mut Criterion) {
    let tb = transfer_bench(3, 9_000, 4);
    let mut g = c.benchmark_group("fig21_load_paths");
    g.bench_function("vft_from_database", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) = tb
                .vft
                .db2darray(
                    &tb.db,
                    &tb.dr,
                    "t",
                    &COLS,
                    TransferPolicy::Locality,
                    &ledger,
                )
                .unwrap();
            assert_eq!(report.rows, 9_000);
            drop(arr);
        })
    });

    // Spark from HDFS: same values staged as CSV blocks.
    let cluster = tb.db.cluster().clone();
    let hdfs = Arc::new(HdfsSim::new(cluster.clone(), 3));
    let flat: Vec<f64> = (0..9_000).flat_map(|i| vec![i as f64; 6]).collect();
    hdfs.put_matrix("t", &flat, 6, 1024);
    let sc = SparkContext::new(cluster.clone(), hdfs, 4);
    g.bench_function("spark_from_hdfs", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (m, _) = sc.load_matrix("t", &ledger).unwrap();
            assert_eq!(m.num_rows(), 9_000);
        })
    });

    // DR-disk: the same rows as local text files, one per worker.
    let schema = Schema::of(&[("a", DataType::Float64), ("b", DataType::Float64)]);
    let per = 3_000usize;
    let batches: Vec<Batch> = (0..3)
        .map(|w| {
            let vals: Vec<f64> = (0..per).map(|i| (w * per + i) as f64).collect();
            Batch::new(
                schema.clone(),
                vec![Column::from_f64(vals.clone()), Column::from_f64(vals)],
            )
            .unwrap()
        })
        .collect();
    LocalLoader::stage(&tb.dr, "t_local", &batches).unwrap();
    g.bench_function("dr_disk_local_files", |b| {
        b.iter(|| {
            let ledger = Ledger::new();
            let (arr, report) = LocalLoader::load(&tb.dr, "t_local", &schema, &ledger).unwrap();
            assert_eq!(report.rows, 9_000);
            drop(arr);
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
