#![allow(dead_code)] // each bench target compiles this module; not all use every helper

//! Shared setup for the figure benches: small clusters with real data.
//!
//! Benchmarks run the *real* implementation at laptop scale (the projected
//! paper-scale numbers come from the `figures` binary). Criterion settings
//! are kept modest — the point is regression tracking, not microsecond
//! precision.

use criterion::Criterion;
use std::sync::Arc;
use vdr_distr::DistributedR;
use vdr_transfer::{install_export_function, FastTransfer};
use vdr_verticadb::{Segmentation, VerticaDb};
use vdr_workloads::transfer_table;

/// Criterion tuned for heavyish end-to-end operations.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// A database with the standard 6-column transfer table plus a runtime.
pub struct TransferBench {
    pub db: Arc<VerticaDb>,
    pub dr: DistributedR,
    pub vft: FastTransfer,
}

pub fn transfer_bench(nodes: usize, rows: usize, instances: usize) -> TransferBench {
    let cluster = vdr_cluster::SimCluster::for_tests(nodes);
    let db = VerticaDb::new(cluster.clone());
    transfer_table(
        &db,
        "t",
        rows,
        Segmentation::Hash {
            column: "id".into(),
        },
        5,
    )
    .unwrap();
    let dr = DistributedR::on_all_nodes(cluster, instances).unwrap();
    let vft = install_export_function(&db);
    TransferBench { db, dr, vft }
}

pub const COLS: [&str; 6] = ["id", "a", "b", "c", "d", "e"];
