//! Figure 16 bench: in-database GLM prediction over a real table.

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::{NodeId, PhaseKind, PhaseRecorder, SimCluster};
use vdr_core::{register_prediction_functions, Model};
use vdr_ml::{Family, GlmModel};
use vdr_verticadb::{Segmentation, VerticaDb};
use vdr_workloads::transfer_table;

fn bench(c: &mut Criterion) {
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster);
    register_prediction_functions(&db);
    transfer_table(
        &db,
        "t",
        30_000,
        Segmentation::Hash {
            column: "id".into(),
        },
        4,
    )
    .unwrap();
    let model = Model::Glm(GlmModel {
        coefficients: vec![0.5, 0.1, -0.2, 0.3, -0.4, 0.5],
        intercept: true,
        family: Family::Gaussian,
        deviance: 0.0,
        iterations: 1,
        converged: true,
    });
    let rec = PhaseRecorder::new("save", PhaseKind::Sequential, 3);
    db.models()
        .save(
            NodeId(0),
            "g",
            "dbadmin",
            "regression",
            "bench",
            model.to_bytes(),
            &rec,
        )
        .unwrap();
    c.bench_function("fig16_glm_predict_30k_rows", |b| {
        b.iter(|| {
            let out = db
                .query(
                    "SELECT glmPredict(a, b, c, d, e USING PARAMETERS model='g') \
                     OVER (PARTITION BEST) FROM t",
                )
                .unwrap();
            assert_eq!(out.batch.num_rows(), 30_000);
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
