//! Figure 15 bench: in-database K-means prediction over a real table.

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::{NodeId, PhaseKind, PhaseRecorder, SimCluster};
use vdr_core::{register_prediction_functions, Model};
use vdr_ml::models::KmeansModel;
use vdr_verticadb::{Segmentation, VerticaDb};
use vdr_workloads::transfer_table;

fn bench(c: &mut Criterion) {
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster);
    register_prediction_functions(&db);
    transfer_table(
        &db,
        "t",
        30_000,
        Segmentation::Hash {
            column: "id".into(),
        },
        4,
    )
    .unwrap();
    let model = Model::Kmeans(KmeansModel {
        centers: (0..10).map(|i| vec![i as f64 * 150.0 - 700.0; 5]).collect(),
        iterations: 1,
        total_withinss: 0.0,
    });
    let rec = PhaseRecorder::new("save", PhaseKind::Sequential, 3);
    db.models()
        .save(
            NodeId(0),
            "km",
            "dbadmin",
            "kmeans",
            "bench",
            model.to_bytes(),
            &rec,
        )
        .unwrap();
    c.bench_function("fig15_kmeans_predict_30k_rows", |b| {
        b.iter(|| {
            let out = db
                .query(
                    "SELECT KmeansPredict(a, b, c, d, e USING PARAMETERS model='km') \
                     OVER (PARTITION BEST) FROM t",
                )
                .unwrap();
            assert_eq!(out.batch.num_rows(), 30_000);
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
