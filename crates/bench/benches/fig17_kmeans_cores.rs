//! Figure 17 bench: the K-means assignment kernel, serial (stock R stand-in)
//! vs the distributed runtime.

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::SimCluster;
use vdr_distr::DistributedR;
use vdr_ml::kmeans::assign_partial;
use vdr_workloads::gaussian_mixture;

fn bench(c: &mut Criterion) {
    let centers: Vec<Vec<f64>> = (0..20)
        .map(|i| (0..10).map(|j| ((i * 3 + j) % 17) as f64).collect())
        .collect();
    let (pts, _) = gaussian_mixture(2_500, &centers, 0.3, 1); // 50k×10
                                                              // The assignment kernel takes the contiguous k×d center buffer.
    let centers: Vec<f64> = centers.into_iter().flatten().collect();
    let mut g = c.benchmark_group("fig17_kmeans_iteration");
    g.bench_function("serial_kernel_50k_rows_k20", |b| {
        b.iter(|| {
            let p = assign_partial(&pts, 10, &centers);
            assert_eq!(p.counts.iter().sum::<u64>(), 50_000);
        })
    });
    // Same kernel through the distributed runtime (4 partitions).
    let dr = DistributedR::on_all_nodes(SimCluster::for_tests(1), 4).unwrap();
    let x = dr.darray(4).unwrap();
    let per = pts.len() / 10 / 4;
    for part in 0..4 {
        x.fill_partition(
            part,
            per,
            10,
            pts[part * per * 10..(part + 1) * per * 10].to_vec(),
        )
        .unwrap();
    }
    g.bench_function("distributed_kernel_50k_rows_k20", |b| {
        b.iter(|| {
            let partials = x
                .map_partitions(|_, p| assign_partial(&p.data, 10, &centers))
                .unwrap();
            let n: u64 = partials.iter().flat_map(|p| &p.counts).sum();
            assert_eq!(n, 50_000);
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
