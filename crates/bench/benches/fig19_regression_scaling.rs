//! Figure 19 bench: distributed regression weak scaling — per-iteration
//! work at 1 vs 2 simulated nodes with proportional data.

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::SimCluster;
use vdr_distr::{DArray, DistributedR};
use vdr_ml::{hpdglm, Family, GlmOptions};
use vdr_workloads::linear_data;

fn dataset(nodes: usize, rows: usize) -> (DistributedR, DArray, DArray) {
    let coefs: Vec<f64> = (0..20).map(|i| (i as f64 - 10.0) / 5.0).collect();
    let (x, y) = linear_data(rows, 1.0, &coefs, 0.0, 8);
    let dr = DistributedR::on_all_nodes(SimCluster::for_tests(nodes), 2).unwrap();
    let xa = dr.darray(nodes).unwrap();
    let per = rows / nodes;
    for part in 0..nodes {
        xa.fill_partition(
            part,
            per,
            20,
            x[part * per * 20..(part + 1) * per * 20].to_vec(),
        )
        .unwrap();
    }
    let ya = xa.clone_structure(1, 0.0).unwrap();
    for part in 0..nodes {
        ya.fill_partition_on(
            ya.worker_of(part).unwrap(),
            part,
            per,
            1,
            y[part * per..(part + 1) * per].to_vec(),
        )
        .unwrap();
    }
    (dr, xa, ya)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19_weak_scaling");
    for (nodes, rows) in [(1usize, 8_000usize), (2, 16_000)] {
        let (_dr, xa, ya) = dataset(nodes, rows);
        g.bench_function(format!("nodes_{nodes}_rows_{rows}"), |b| {
            b.iter(|| {
                let m = hpdglm(&xa, &ya, Family::Gaussian, &GlmOptions::default()).unwrap();
                assert!(m.converged);
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
