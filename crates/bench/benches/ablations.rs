//! Ablation benches: transfer policies under skew, wire encodings, and
//! psize buffering granularity.

mod common;

use common::criterion;
use criterion::Criterion;
use vdr_cluster::{Ledger, SimCluster};
use vdr_columnar::encoding::Encoding;
use vdr_columnar::{encode_batch_with, Batch, Column, DataType, Schema};
use vdr_distr::DistributedR;
use vdr_transfer::odbc::{parse_rows, render_rows};
use vdr_transfer::{install_export_function, TransferPolicy};
use vdr_verticadb::{Segmentation, VerticaDb};
use vdr_workloads::transfer_table;

fn bench(c: &mut Criterion) {
    // Policy × skew.
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster.clone());
    transfer_table(
        &db,
        "t",
        9_000,
        Segmentation::Skewed {
            weights: vec![6.0, 1.0, 1.0],
        },
        4,
    )
    .unwrap();
    let dr = DistributedR::on_all_nodes(cluster, 4).unwrap();
    let vft = install_export_function(&db);
    let mut g = c.benchmark_group("ablation_policy_skew");
    for policy in [TransferPolicy::Locality, TransferPolicy::Uniform] {
        g.bench_function(policy.as_param(), |b| {
            b.iter(|| {
                let ledger = Ledger::new();
                let (arr, report) = vft
                    .db2darray(&db, &dr, "t", &["id", "a"], policy, &ledger)
                    .unwrap();
                assert_eq!(report.rows, 9_000);
                drop(arr);
            })
        });
    }
    g.finish();

    // Wire encodings: binary block round trip vs text round trip.
    let schema = Schema::of(&[("i", DataType::Int64), ("f", DataType::Float64)]);
    let batch = Batch::new(
        schema.clone(),
        vec![
            Column::from_i64((0..20_000).collect()),
            Column::from_f64((0..20_000).map(|i| i as f64 * 0.371).collect()),
        ],
    )
    .unwrap();
    let mut g = c.benchmark_group("ablation_wire_encoding");
    g.bench_function("binary_roundtrip_20k_rows", |b| {
        b.iter(|| {
            let bytes = encode_batch_with(&batch, Some(Encoding::Plain));
            let back = vdr_columnar::decode_batch(&bytes).unwrap();
            assert_eq!(back.num_rows(), 20_000);
        })
    });
    g.bench_function("text_roundtrip_20k_rows", |b| {
        b.iter(|| {
            let text = render_rows(&batch);
            let back = parse_rows(&schema, &text).unwrap();
            assert_eq!(back.num_rows(), 20_000);
        })
    });
    g.finish();

    // Buffering granularity.
    let mut g = c.benchmark_group("ablation_psize");
    for psize in [9_000u64, 500] {
        g.bench_function(format!("psize_{psize}"), |b| {
            b.iter(|| {
                let ledger = Ledger::new();
                let (arr, report) = vft
                    .db2darray_opts(
                        &db,
                        &dr,
                        "t",
                        &["id", "a"],
                        TransferPolicy::Uniform,
                        &ledger,
                        Some(psize),
                    )
                    .unwrap();
                assert_eq!(report.rows, 9_000);
                drop(arr);
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
