//! Figure 14 bench: VFT with few vs many R instances per node (the R-side
//! conversion parallelism).

mod common;

use common::{criterion, COLS};
use criterion::Criterion;
use vdr_cluster::{Ledger, SimCluster};
use vdr_distr::DistributedR;
use vdr_transfer::{install_export_function, TransferPolicy};
use vdr_verticadb::{Segmentation, VerticaDb};
use vdr_workloads::transfer_table;

fn bench(c: &mut Criterion) {
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster.clone());
    transfer_table(&db, "t", 9_000, Segmentation::RoundRobin, 5).unwrap();
    let vft = install_export_function(&db);
    let mut g = c.benchmark_group("fig14_vft_breakdown");
    for instances in [2usize, 8] {
        let dr =
            DistributedR::start(cluster.clone(), cluster.node_ids(), instances, u64::MAX).unwrap();
        g.bench_function(format!("instances_{instances}"), |b| {
            b.iter(|| {
                let ledger = Ledger::new();
                let (arr, report) = vft
                    .db2darray(&db, &dr, "t", &COLS, TransferPolicy::Locality, &ledger)
                    .unwrap();
                assert_eq!(report.rows, 9_000);
                drop(arr);
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
