//! Dump the process metrics and data-collector state in Prometheus text
//! format after a small representative workload — a few tracked scans and
//! one VFT transfer, so statement and transfer ticks both fire. CI runs
//! this, then validates that every line of the output parses as Prometheus
//! exposition format and that the `vdr_dc_*` series are live. Writes to the
//! path given as the first argument, or stdout.

use std::sync::Arc;
use vdr_cluster::{Ledger, SimCluster};
use vdr_columnar::{Batch, Column, DataType, Schema};
use vdr_core::{Session, SessionOptions};
use vdr_distr::DistributedR;
use vdr_transfer::{install_export_function, TransferPolicy};
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

fn main() {
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster.clone());
    let schema = Schema::of(&[("a", DataType::Float64), ("b", DataType::Float64)]);
    db.create_table(TableDef {
        name: "samples".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .expect("create table");
    let a: Vec<f64> = (0..3_000).map(|i| i as f64).collect();
    let b: Vec<f64> = a.iter().map(|x| 2.0 * x).collect();
    db.copy(
        "samples",
        vec![Batch::new(schema, vec![Column::from_f64(a), Column::from_f64(b)]).expect("batch")],
    )
    .expect("copy");

    let session = Session::connect_colocated(
        Arc::clone(&db),
        SessionOptions {
            r_instances_per_node: 2,
            ..Default::default()
        },
    )
    .expect("connect");

    // Statement ticks: a cold scan, a warm scan, an aggregate.
    for sql in [
        "SELECT a, b FROM samples WHERE a >= 100.0",
        "SELECT a, b FROM samples WHERE a < 2000.0",
        "SELECT sum(a), sum(b) FROM samples",
    ] {
        session.sql(sql).expect("tracked statement");
    }

    // One transfer tick, so the export shows the vft trigger too.
    let dr = DistributedR::on_all_nodes(cluster, 2).expect("runtime");
    let vft = install_export_function(&db);
    vft.db2darray(
        &db,
        &dr,
        "samples",
        &["a", "b"],
        TransferPolicy::Locality,
        &Ledger::new(),
    )
    .expect("vft transfer");

    let text = session.export_metrics();
    match std::env::args().nth(1) {
        Some(path) => std::fs::write(&path, &text).unwrap_or_else(|e| panic!("write {path}: {e}")),
        None => print!("{text}"),
    }
}
