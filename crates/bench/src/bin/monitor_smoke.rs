//! CI smoke for the `v_monitor` virtual schema: run a scan through a
//! session, read the live metrics table over SQL, `PROFILE` a second scan,
//! and run one VFT transfer. Emits a JSON summary on stdout that ci.sh
//! asserts on — non-empty system-table output, every profile row attributed
//! to the profiled statement's query id, and the transfer's `vft.*`
//! counters visible through `v_monitor.metrics`.

use serde::Serialize;
use std::sync::Arc;
use vdr_cluster::{Ledger, SimCluster};
use vdr_columnar::{Batch, Column, DataType, Schema, Value};
use vdr_core::{Session, SessionOptions};
use vdr_distr::DistributedR;
use vdr_transfer::{install_export_function, TransferPolicy};
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

#[derive(Serialize)]
struct ProfileSummary {
    query_id: u64,
    rows: usize,
    phase_rows: u64,
    scan_cache_rows: u64,
    all_rows_attributed: bool,
}

/// One VFT transfer as seen by the monitor: report timings plus the `vft.*`
/// counters read back over SQL from `v_monitor.metrics`.
#[derive(Serialize)]
struct VftSummary {
    rows: u64,
    db_ms: f64,
    client_ms: f64,
    queue_ms: f64,
    segment_rows: f64,
    worker_rows: f64,
    receive_frames: f64,
}

#[derive(Serialize)]
struct Smoke {
    metrics_rows: usize,
    scan_query_id: u64,
    profile: ProfileSummary,
    vft: VftSummary,
}

fn main() {
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster.clone());
    let schema = Schema::of(&[("a", DataType::Float64), ("b", DataType::Float64)]);
    db.create_table(TableDef {
        name: "samples".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .expect("create table");
    let a: Vec<f64> = (0..2_000).map(|i| i as f64).collect();
    let b: Vec<f64> = a.iter().map(|x| 3.0 * x).collect();
    db.copy(
        "samples",
        vec![Batch::new(schema, vec![Column::from_f64(a), Column::from_f64(b)]).expect("batch")],
    )
    .expect("copy");

    let session = Session::connect_colocated(
        Arc::clone(&db),
        SessionOptions {
            r_instances_per_node: 2,
            ..Default::default()
        },
    )
    .expect("connect");

    let scan = session
        .sql("SELECT a, b FROM samples WHERE a >= 10.0")
        .expect("scan");

    let metrics = session
        .sql("SELECT name, kind, value FROM v_monitor.metrics")
        .expect("metrics table")
        .batch;

    let profile = session
        .sql("PROFILE SELECT a, b FROM samples")
        .expect("profile");
    let pb = &profile.batch;
    let mut phase_rows = 0u64;
    let mut scan_cache_rows = 0u64;
    let mut attributed = true;
    for r in 0..pb.num_rows() {
        let row = pb.row(r);
        if row[0] != Value::Int64(profile.query_id as i64) {
            attributed = false;
        }
        match (&row[1], &row[2]) {
            (Value::Varchar(section), _) if section == "phase" => phase_rows += 1,
            (_, Value::Varchar(name)) if name.starts_with("scan.cache.") => scan_cache_rows += 1,
            _ => {}
        }
    }

    // One pipelined VFT transfer; its counters must then be visible through
    // the monitor schema.
    let dr = DistributedR::on_all_nodes(cluster, 2).expect("runtime");
    let vft = install_export_function(&db);
    let ledger = Ledger::new();
    let (arr, report) = vft
        .db2darray(
            &db,
            &dr,
            "samples",
            &["a", "b"],
            TransferPolicy::Locality,
            &ledger,
        )
        .expect("vft transfer");
    drop(arr);

    let vm = session
        .sql("SELECT name, kind, value FROM v_monitor.metrics")
        .expect("metrics after transfer")
        .batch;
    let mut segment_rows = 0.0;
    let mut worker_rows = 0.0;
    let mut receive_frames = 0.0;
    for r in 0..vm.num_rows() {
        let row = vm.row(r);
        let (Value::Varchar(name), Value::Float64(value)) = (&row[0], &row[2]) else {
            continue;
        };
        match name.as_str() {
            "vft.segment.rows" => segment_rows += value,
            "vft.worker.rows" => worker_rows += value,
            "vft.receive.frames" => receive_frames += value,
            _ => {}
        }
    }

    let doc = Smoke {
        metrics_rows: metrics.num_rows(),
        scan_query_id: scan.query_id,
        profile: ProfileSummary {
            query_id: profile.query_id,
            rows: pb.num_rows(),
            phase_rows,
            scan_cache_rows,
            all_rows_attributed: attributed,
        },
        vft: VftSummary {
            rows: report.rows,
            db_ms: report.db_time.as_secs() * 1e3,
            client_ms: report.client_time.as_secs() * 1e3,
            queue_ms: report.queue_time.as_secs() * 1e3,
            segment_rows,
            worker_rows,
            receive_frames,
        },
    };
    println!("{}", serde_json::to_string_pretty(&doc).expect("json"));
}
