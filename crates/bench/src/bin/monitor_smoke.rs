//! CI smoke for the `v_monitor` virtual schema: run a scan through a
//! session, read the live metrics table over SQL, and `PROFILE` a second
//! scan. Emits a JSON summary on stdout that ci.sh asserts on — non-empty
//! system-table output, and every profile row attributed to the profiled
//! statement's query id.

use serde::Serialize;
use std::sync::Arc;
use vdr_cluster::SimCluster;
use vdr_columnar::{Batch, Column, DataType, Schema, Value};
use vdr_core::{Session, SessionOptions};
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

#[derive(Serialize)]
struct ProfileSummary {
    query_id: u64,
    rows: usize,
    phase_rows: u64,
    scan_cache_rows: u64,
    all_rows_attributed: bool,
}

#[derive(Serialize)]
struct Smoke {
    metrics_rows: usize,
    scan_query_id: u64,
    profile: ProfileSummary,
}

fn main() {
    let db = VerticaDb::new(SimCluster::for_tests(3));
    let schema = Schema::of(&[("a", DataType::Float64), ("b", DataType::Float64)]);
    db.create_table(TableDef {
        name: "samples".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .expect("create table");
    let a: Vec<f64> = (0..2_000).map(|i| i as f64).collect();
    let b: Vec<f64> = a.iter().map(|x| 3.0 * x).collect();
    db.copy(
        "samples",
        vec![Batch::new(schema, vec![Column::from_f64(a), Column::from_f64(b)]).expect("batch")],
    )
    .expect("copy");

    let session = Session::connect_colocated(
        Arc::clone(&db),
        SessionOptions {
            r_instances_per_node: 2,
            ..Default::default()
        },
    )
    .expect("connect");

    let scan = session
        .sql("SELECT a, b FROM samples WHERE a >= 10.0")
        .expect("scan");

    let metrics = session
        .sql("SELECT name, kind, value FROM v_monitor.metrics")
        .expect("metrics table")
        .batch;

    let profile = session
        .sql("PROFILE SELECT a, b FROM samples")
        .expect("profile");
    let pb = &profile.batch;
    let mut phase_rows = 0u64;
    let mut scan_cache_rows = 0u64;
    let mut attributed = true;
    for r in 0..pb.num_rows() {
        let row = pb.row(r);
        if row[0] != Value::Int64(profile.query_id as i64) {
            attributed = false;
        }
        match (&row[1], &row[2]) {
            (Value::Varchar(section), _) if section == "phase" => phase_rows += 1,
            (_, Value::Varchar(name)) if name.starts_with("scan.cache.") => scan_cache_rows += 1,
            _ => {}
        }
    }

    let doc = Smoke {
        metrics_rows: metrics.num_rows(),
        scan_query_id: scan.query_id,
        profile: ProfileSummary {
            query_id: profile.query_id,
            rows: pb.num_rows(),
            phase_rows,
            scan_cache_rows,
            all_rows_attributed: attributed,
        },
    };
    println!("{}", serde_json::to_string_pretty(&doc).expect("json"));
}
