//! CI smoke for the `v_monitor` virtual schema: run a scan through a
//! session, read the live metrics table over SQL, `PROFILE` a second scan,
//! run one VFT transfer, `TRACE` a statement, and export the session's
//! Chrome trace file. Emits a JSON summary on stdout that ci.sh asserts on
//! — non-empty system-table output, every profile row attributed to the
//! profiled statement's query id, the transfer's `vft.*` counters visible
//! through `v_monitor.metrics`, non-empty `v_monitor.events` /
//! `v_monitor.slow_requests`, a trace file whose spans cover ≥ 2 nodes
//! under one query id, and a compressed-execution scan whose
//! `scan.encoded.*` counters prove predicates ran on RLE runs and
//! dictionary codes. Human-readable extras (the latency percentile table)
//! go to stderr so stdout stays pure JSON.

use serde::Serialize;
use std::sync::Arc;
use vdr_cluster::{Ledger, SimCluster};
use vdr_columnar::{Batch, Column, DataType, Schema, Value};
use vdr_core::{Session, SessionOptions};
use vdr_distr::DistributedR;
use vdr_transfer::{install_export_function, TransferPolicy};
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

#[derive(Serialize)]
struct ProfileSummary {
    query_id: u64,
    rows: usize,
    phase_rows: u64,
    scan_cache_rows: u64,
    all_rows_attributed: bool,
}

/// One VFT transfer as seen by the monitor: report timings plus the `vft.*`
/// counters read back over SQL from `v_monitor.metrics`.
#[derive(Serialize)]
struct VftSummary {
    rows: u64,
    db_ms: f64,
    client_ms: f64,
    queue_ms: f64,
    segment_rows: f64,
    worker_rows: f64,
    receive_frames: f64,
}

/// The `TRACE <stmt>` flattened span tree, as returned over SQL.
#[derive(Serialize)]
struct TraceStmtSummary {
    rows: usize,
    /// Distinct node labels among the returned spans.
    nodes: usize,
    /// Every span row carries the traced statement's query id.
    all_rows_attributed: bool,
}

/// The exported Chrome trace file, parsed back.
#[derive(Serialize)]
struct TraceFileSummary {
    /// Complete ("X") events in the file.
    events: usize,
    /// Max distinct node pids sharing one query id — ≥ 2 proves a
    /// distributed statement reconstructs as a single trace tree.
    max_nodes_one_query: usize,
    has_vft_span: bool,
    parses: bool,
}

/// One train-while-loading GLM fit as seen by the monitor: the `ml.train.*`
/// counters read back over SQL from `v_monitor.metrics`, plus the PROFILE
/// attribution of the train query id (its history record's metric deltas
/// rendered through the same `profile_batch` machinery `PROFILE` uses).
#[derive(Serialize)]
struct TrainSummary {
    rows: u64,
    converged: bool,
    /// `fit.overlap_ns` — training work folded under the transfer.
    overlap_ns: u64,
    /// `ml.train.overlap_ns` summed from `v_monitor.metrics`; must be > 0.
    metrics_overlap_ns: f64,
    /// `ml.train.rows_per_sec` histogram events in `v_monitor.metrics`.
    metrics_rows_per_sec_events: f64,
    /// `ml.train.deviance` gauge rows present in `v_monitor.metrics`.
    metrics_deviance_rows: usize,
    /// The train run's query id (shared with its vft.* metrics).
    query_id: u64,
    /// PROFILE rows for that query id carrying `ml.train.*` metrics —
    /// every one stamped with the train query id.
    profile_train_rows: usize,
    profile_has_overlap_counter: bool,
    profile_all_rows_attributed: bool,
}

#[derive(Serialize)]
struct SlowSummary {
    rows: usize,
    /// Every slow row carries a nonzero query id.
    all_rows_attributed: bool,
}

/// One compressed-execution scan as seen by the monitor: a `PROFILE`d
/// predicate over a low-cardinality table whose integer column RLE-encodes
/// and whose varchar column dictionary-encodes, plus a dictionary GROUP BY.
/// The `scan.encoded.*` counters are read back over SQL from
/// `v_monitor.metrics`.
#[derive(Serialize)]
struct EncodedSummary {
    /// Rows the filtered projection returned.
    rows: usize,
    /// Groups the dictionary GROUP BY returned.
    group_rows: usize,
    /// `scan.encoded.runs_skipped` — per-row comparisons the RLE kernel
    /// avoided. > 0 proves the predicate ran without materializing the
    /// plain column.
    runs_skipped: f64,
    /// `scan.encoded.codes_tested` — distinct dictionary codes compared.
    codes_tested: f64,
    /// `scan.encoded.late_materialized_rows` — survivor rows expanded from
    /// encoded form after the filter.
    late_materialized_rows: f64,
    /// PROFILE rows for the encoded statement carrying `scan.encoded.*`
    /// metrics.
    profile_encoded_rows: usize,
    profile_all_rows_attributed: bool,
}

/// The data collector's time-series tables and the cluster-wide `v_monitor`
/// surface, read back over SQL at the end of the run.
#[derive(Serialize)]
struct DcSummary {
    /// Rows of `v_monitor.dc_metrics_by_tick`.
    metric_rows: usize,
    /// Distinct tick values among them — ≥ 2 proves the sampler advanced at
    /// multiple statement/transfer boundaries.
    ticks: usize,
    /// Distinct (non-NULL) node ids — ≥ 2 proves per-node ring slicing.
    nodes: usize,
    /// Rows of `v_monitor.dc_resource_usage`, and their cpu_core_ns sum.
    resource_rows: usize,
    cpu_core_ns: f64,
    /// Rows of `v_monitor.dc_query_summaries` per trigger kind.
    statement_summaries: usize,
    vft_summaries: usize,
    train_summaries: usize,
    /// Distinct `node_name` values seen in each cluster-materialized table —
    /// all must equal the cluster size.
    metrics_node_names: usize,
    profiles_node_names: usize,
    containers_node_names: usize,
}

#[derive(Serialize)]
struct Smoke {
    metrics_rows: usize,
    scan_query_id: u64,
    profile: ProfileSummary,
    vft: VftSummary,
    train: TrainSummary,
    trace_stmt: TraceStmtSummary,
    trace_file: TraceFileSummary,
    events_rows: usize,
    slow: SlowSummary,
    encoded: EncodedSummary,
    dc: DcSummary,
}

fn main() {
    // Record spans for the whole run so the exported trace file is populated.
    let _verbosity = vdr_obs::verbosity_guard(vdr_obs::Verbosity::Trace);
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster.clone());
    let schema = Schema::of(&[("a", DataType::Float64), ("b", DataType::Float64)]);
    db.create_table(TableDef {
        name: "samples".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .expect("create table");
    let a: Vec<f64> = (0..2_000).map(|i| i as f64).collect();
    let b: Vec<f64> = a.iter().map(|x| 3.0 * x).collect();
    db.copy(
        "samples",
        vec![Batch::new(schema, vec![Column::from_f64(a), Column::from_f64(b)]).expect("batch")],
    )
    .expect("copy");

    // Lower the slow-query threshold to 1 ns so ordinary statements register
    // as "artificially slow" and ci.sh can assert the ring is non-empty.
    db.monitor().set_slow_threshold_ns(1);

    let session = Session::connect_colocated(
        Arc::clone(&db),
        SessionOptions {
            r_instances_per_node: 2,
            ..Default::default()
        },
    )
    .expect("connect");

    let scan = session
        .sql("SELECT a, b FROM samples WHERE a >= 10.0")
        .expect("scan");

    let metrics = session
        .sql("SELECT name, kind, value FROM v_monitor.metrics")
        .expect("metrics table")
        .batch;

    let profile = session
        .sql("PROFILE SELECT a, b FROM samples")
        .expect("profile");
    let pb = &profile.batch;
    let mut phase_rows = 0u64;
    let mut scan_cache_rows = 0u64;
    let mut attributed = true;
    for r in 0..pb.num_rows() {
        let row = pb.row(r);
        if row[0] != Value::Int64(profile.query_id as i64) {
            attributed = false;
        }
        match (&row[1], &row[2]) {
            (Value::Varchar(section), _) if section == "phase" => phase_rows += 1,
            (_, Value::Varchar(name)) if name.starts_with("scan.cache.") => scan_cache_rows += 1,
            _ => {}
        }
    }

    // One pipelined VFT transfer; its counters must then be visible through
    // the monitor schema.
    let dr = DistributedR::on_all_nodes(cluster, 2).expect("runtime");
    let vft = install_export_function(&db);
    let ledger = Ledger::new();
    let (arr, report) = vft
        .db2darray(
            &db,
            &dr,
            "samples",
            &["a", "b"],
            TransferPolicy::Locality,
            &ledger,
        )
        .expect("vft transfer");
    drop(arr);

    let vm = session
        .sql("SELECT name, kind, value FROM v_monitor.metrics")
        .expect("metrics after transfer")
        .batch;
    let mut segment_rows = 0.0;
    let mut worker_rows = 0.0;
    let mut receive_frames = 0.0;
    for r in 0..vm.num_rows() {
        let row = vm.row(r);
        let (Value::Varchar(name), Value::Float64(value)) = (&row[0], &row[2]) else {
            continue;
        };
        match name.as_str() {
            "vft.segment.rows" => segment_rows += value,
            "vft.worker.rows" => worker_rows += value,
            "vft.receive.frames" => receive_frames += value,
            _ => {}
        }
    }

    // One train-while-loading GLM fit: iteration-0 statistics fold inside
    // the receive pools, so ml.train.overlap_ns must be > 0 and the whole
    // run must be attributed to one query id through the PROFILE machinery.
    vdr_workloads::regression_table(
        &db,
        "train_smoke",
        6_000,
        1.0,
        &[2.0, -1.0, 0.5],
        0.05,
        Segmentation::RoundRobin,
        41,
    )
    .expect("regression table");
    let fit = vdr_transfer::glm_while_loading(
        &vft,
        &db,
        &dr,
        "train_smoke",
        &["x1", "x2", "x3"],
        "y",
        vdr_ml::Family::Gaussian,
        &vdr_ml::GlmOptions::default(),
        TransferPolicy::Locality,
        &Ledger::new(),
    )
    .expect("train while loading");

    let tm = session
        .sql("SELECT name, kind, value FROM v_monitor.metrics")
        .expect("metrics after training")
        .batch;
    let mut metrics_overlap_ns = 0.0;
    let mut metrics_rows_per_sec_events = 0.0;
    let mut metrics_deviance_rows = 0usize;
    for r in 0..tm.num_rows() {
        let row = tm.row(r);
        let (Value::Varchar(name), Value::Float64(value)) = (&row[0], &row[2]) else {
            continue;
        };
        match name.as_str() {
            "ml.train.overlap_ns" => metrics_overlap_ns += value,
            "ml.train.rows_per_sec" => metrics_rows_per_sec_events += value,
            "ml.train.deviance" => metrics_deviance_rows += 1,
            _ => {}
        }
    }

    // The train run's history record, rendered through the same
    // profile_batch PROFILE uses: ml.train.* rows stamped with its query id.
    let record = db
        .monitor()
        .history()
        .get(fit.query_id)
        .expect("train run in query history");
    let train_profile = vdr_verticadb::monitor::profile_batch(&record).expect("profile batch");
    let mut profile_train_rows = 0usize;
    let mut profile_has_overlap_counter = false;
    let mut profile_all_rows_attributed = true;
    for r in 0..train_profile.num_rows() {
        let row = train_profile.row(r);
        if row[0] != Value::Int64(fit.query_id as i64) {
            profile_all_rows_attributed = false;
        }
        if let Value::Varchar(name) = &row[2] {
            if name.starts_with("ml.train.") {
                profile_train_rows += 1;
                profile_has_overlap_counter |= name == "ml.train.overlap_ns";
            }
        }
    }

    // TRACE <stmt>: the distributed span tree of one statement, over SQL.
    // Columns: span_id, parent_id, query_id, name, node, tid, start_ms,
    // wall_ms, sim_us, fields.
    let traced = session
        .sql("TRACE SELECT a, b FROM samples WHERE b >= 0.0")
        .expect("trace statement");
    let tb = &traced.batch;
    let mut trace_nodes = std::collections::BTreeSet::new();
    let mut trace_attributed = tb.num_rows() > 0;
    for r in 0..tb.num_rows() {
        let row = tb.row(r);
        if row[2] != Value::Int64(traced.query_id as i64) {
            trace_attributed = false;
        }
        if let Value::Int64(node) = row[4] {
            trace_nodes.insert(node);
        }
    }

    // Chrome trace export: every span since connect, one pid per node.
    let trace_path =
        std::env::temp_dir().join(format!("vdr_monitor_smoke_{}.json", std::process::id()));
    session.export_trace(&trace_path).expect("export trace");
    let text = std::fs::read_to_string(&trace_path).expect("read trace file");
    let parsed: Option<serde_json::Value> = serde_json::from_str(&text).ok();
    let mut events = 0usize;
    let mut has_vft_span = false;
    let mut nodes_by_query: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>> =
        std::collections::BTreeMap::new();
    if let Some(doc) = &parsed {
        for ev in doc
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .map(Vec::as_slice)
            .unwrap_or_default()
        {
            if ev.get("ph").and_then(serde_json::Value::as_str) != Some("X") {
                continue;
            }
            events += 1;
            if let Some(name) = ev.get("name").and_then(serde_json::Value::as_str) {
                has_vft_span |= name.starts_with("vft.");
            }
            let pid = ev.get("pid").and_then(serde_json::Value::as_u64);
            let qid = ev
                .get("args")
                .and_then(|a| a.get("query_id"))
                .and_then(serde_json::Value::as_u64);
            if let (Some(pid), Some(qid)) = (pid, qid) {
                if pid > 0 && qid > 0 {
                    nodes_by_query.entry(qid).or_default().insert(pid);
                }
            }
        }
    }
    let max_nodes_one_query = nodes_by_query.values().map(|s| s.len()).max().unwrap_or(0);
    std::fs::remove_file(&trace_path).ok();

    // Event log and slow-query ring, both over SQL.
    let events_rows = session
        .sql("SELECT kind, detail FROM v_monitor.events")
        .expect("events table")
        .batch
        .num_rows();
    let slow = session
        .sql("SELECT query_id, sql, wall_ms FROM v_monitor.slow_requests")
        .expect("slow_requests table")
        .batch;
    let mut slow_attributed = slow.num_rows() > 0;
    for r in 0..slow.num_rows() {
        if !matches!(slow.row(r)[0], Value::Int64(id) if id > 0) {
            slow_attributed = false;
        }
    }

    // Compressed execution: a low-cardinality table whose integer column
    // RLE-encodes (long sorted runs) and whose varchar column
    // dictionary-encodes (three distinct values per node). The PROFILE'd
    // predicate must evaluate on the encoded form — per run and per
    // dictionary code — and late-materialize only the survivors.
    db.query("CREATE TABLE lc (id INTEGER, grp INTEGER, x FLOAT, tag VARCHAR)")
        .expect("create lc");
    let mut values = Vec::new();
    for i in 0..900i64 {
        let tag = ["low", "mid", "high"][((i / 5) % 3) as usize];
        values.push(format!("({i}, {}, {}.25, '{tag}')", i / 300, i % 5));
    }
    db.query(&format!("INSERT INTO lc VALUES {}", values.join(", ")))
        .expect("load lc");
    let enc_profile = db
        .query("PROFILE SELECT id, x FROM lc WHERE grp = 1 AND tag <> 'low'")
        .expect("profile encoded scan");
    let mut profile_encoded_rows = 0usize;
    let mut enc_attributed = true;
    for r in 0..enc_profile.batch.num_rows() {
        let row = enc_profile.batch.row(r);
        if row[0] != Value::Int64(enc_profile.query_id as i64) {
            enc_attributed = false;
        }
        if let Value::Varchar(name) = &row[2] {
            if name.starts_with("scan.encoded.") {
                profile_encoded_rows += 1;
            }
        }
    }
    let enc_rows = db
        .query("SELECT id, x FROM lc WHERE grp = 1 AND tag <> 'low'")
        .expect("encoded scan")
        .batch
        .num_rows();
    let group_rows = db
        .query("SELECT tag, count(*), avg(x) FROM lc GROUP BY tag")
        .expect("dict group by")
        .batch
        .num_rows();
    let em = session
        .sql("SELECT name, kind, value FROM v_monitor.metrics")
        .expect("metrics after encoded scan")
        .batch;
    let mut runs_skipped = 0.0;
    let mut codes_tested = 0.0;
    let mut late_materialized_rows = 0.0;
    for r in 0..em.num_rows() {
        let row = em.row(r);
        let (Value::Varchar(name), Value::Float64(value)) = (&row[0], &row[2]) else {
            continue;
        };
        match name.as_str() {
            "scan.encoded.runs_skipped" => runs_skipped += value,
            "scan.encoded.codes_tested" => codes_tested += value,
            "scan.encoded.late_materialized_rows" => late_materialized_rows += value,
            _ => {}
        }
    }

    // Data collector: every tracked statement and the VFT/train completions
    // above ticked the sampler; its tables must answer cluster-wide.
    let dcm = session
        .sql("SELECT tick, node, name, value FROM v_monitor.dc_metrics_by_tick")
        .expect("dc_metrics_by_tick")
        .batch;
    let mut dc_ticks = std::collections::BTreeSet::new();
    let mut dc_nodes = std::collections::BTreeSet::new();
    for r in 0..dcm.num_rows() {
        let row = dcm.row(r);
        if let Value::Int64(t) = row[0] {
            dc_ticks.insert(t);
        }
        if let Value::Int64(n) = row[1] {
            dc_nodes.insert(n);
        }
    }
    let dcu = session
        .sql("SELECT cpu_core_ns FROM v_monitor.dc_resource_usage")
        .expect("dc_resource_usage")
        .batch;
    let dc_cpu: f64 = (0..dcu.num_rows())
        .filter_map(|r| match dcu.row(r)[0] {
            Value::Float64(v) => Some(v),
            _ => None,
        })
        .sum();
    let dcs = session
        .sql("SELECT trigger FROM v_monitor.dc_query_summaries")
        .expect("dc_query_summaries")
        .batch;
    let trigger_count = |want: &str| {
        (0..dcs.num_rows())
            .filter(|&r| matches!(&dcs.row(r)[0], Value::Varchar(t) if t == want))
            .count()
    };

    // Cluster-wide materialization: the per-node tables must union rows
    // from every node, each stamped with the owning node's name.
    let distinct_node_names = |table: &str| {
        let batch = session
            .sql(&format!("SELECT node_name FROM v_monitor.{table}"))
            .unwrap_or_else(|e| panic!("{table}: {e}"))
            .batch;
        (0..batch.num_rows())
            .map(|r| match &batch.row(r)[0] {
                Value::Varchar(s) => s.clone(),
                other => panic!("{table}: non-varchar node_name {other:?}"),
            })
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    };

    // Human-readable percentile summary — stderr, so stdout stays JSON.
    let session_report = session.trace_report();
    if let Some(table) = session_report.percentile_table() {
        eprintln!("{}", table.to_text());
    }

    let doc = Smoke {
        metrics_rows: metrics.num_rows(),
        scan_query_id: scan.query_id,
        profile: ProfileSummary {
            query_id: profile.query_id,
            rows: pb.num_rows(),
            phase_rows,
            scan_cache_rows,
            all_rows_attributed: attributed,
        },
        vft: VftSummary {
            rows: report.rows,
            db_ms: report.db_time.as_secs() * 1e3,
            client_ms: report.client_time.as_secs() * 1e3,
            queue_ms: report.queue_time.as_secs() * 1e3,
            segment_rows,
            worker_rows,
            receive_frames,
        },
        train: TrainSummary {
            rows: fit.report.rows,
            converged: fit.model.converged,
            overlap_ns: fit.overlap_ns,
            metrics_overlap_ns,
            metrics_rows_per_sec_events,
            metrics_deviance_rows,
            query_id: fit.query_id,
            profile_train_rows,
            profile_has_overlap_counter,
            profile_all_rows_attributed,
        },
        trace_stmt: TraceStmtSummary {
            rows: tb.num_rows(),
            nodes: trace_nodes.len(),
            all_rows_attributed: trace_attributed,
        },
        trace_file: TraceFileSummary {
            events,
            max_nodes_one_query,
            has_vft_span,
            parses: parsed.is_some(),
        },
        events_rows,
        slow: SlowSummary {
            rows: slow.num_rows(),
            all_rows_attributed: slow_attributed,
        },
        encoded: EncodedSummary {
            rows: enc_rows,
            group_rows,
            runs_skipped,
            codes_tested,
            late_materialized_rows,
            profile_encoded_rows,
            profile_all_rows_attributed: enc_attributed,
        },
        dc: DcSummary {
            metric_rows: dcm.num_rows(),
            ticks: dc_ticks.len(),
            nodes: dc_nodes.len(),
            resource_rows: dcu.num_rows(),
            cpu_core_ns: dc_cpu,
            statement_summaries: trigger_count("statement"),
            vft_summaries: trigger_count("vft"),
            train_summaries: trigger_count("train"),
            metrics_node_names: distinct_node_names("metrics"),
            profiles_node_names: distinct_node_names("execution_engine_profiles"),
            containers_node_names: distinct_node_names("storage_containers"),
        },
    };
    println!("{}", serde_json::to_string_pretty(&doc).expect("json"));
}
