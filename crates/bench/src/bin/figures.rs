//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p vdr-bench --release --bin figures            # everything
//! cargo run -p vdr-bench --release --bin figures -- fig12   # one figure
//! cargo run -p vdr-bench --release --bin figures -- --markdown > out.md
//! cargo run -p vdr-bench --release --bin figures -- --json  # JSON to stdout
//! ```
//!
//! Besides the requested rendering, every run writes the full machine-readable
//! result set to `FIGURES.json` (override the path with `--out <file>`).

use serde_json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("FIGURES.json");
    let mut skip_next = false;
    let selected: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .collect();

    let figures = vdr_bench::all_figures();
    let mut rendered = Vec::new();
    for (id, f) in &figures {
        if !selected.is_empty() && !selected.iter().any(|s| s.as_str() == *id) {
            continue;
        }
        let report = f();
        let table = report.to_table();
        if markdown {
            println!("{}", table.to_markdown());
        } else if !json {
            println!("{}", table.to_text());
        }
        rendered.push(serde_json::to_value(&report).expect("figure serializes"));
    }
    if rendered.is_empty() {
        eprintln!(
            "no figure matched {selected:?}; available: {}",
            figures
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }

    let doc = Value::Object(vec![("figures".to_string(), Value::Array(rendered))]);
    let text = serde_json::to_string_pretty(&doc).expect("figures serialize");
    // Persist before printing: a reader closing stdout early (`| head`)
    // must not lose the artifact.
    if let Err(e) = std::fs::write(out_path, format!("{text}\n")) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    if json {
        println!("{text}");
    }
}
