//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p vdr-bench --release --bin figures            # everything
//! cargo run -p vdr-bench --release --bin figures -- fig12   # one figure
//! cargo run -p vdr-bench --release --bin figures -- --markdown > out.md
//! ```

use vdr_bench::report::to_markdown;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let selected: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let figures = vdr_bench::all_figures();
    let mut ran = 0;
    for (id, f) in &figures {
        if !selected.is_empty() && !selected.iter().any(|s| s.as_str() == *id) {
            continue;
        }
        ran += 1;
        let report = f();
        if markdown {
            print!("{}", to_markdown(&report));
        } else {
            println!("{report}");
        }
    }
    if ran == 0 {
        eprintln!(
            "no figure matched {selected:?}; available: {}",
            figures
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
}
