//! Report formatting for the figure harness, rendered through the shared
//! [`vdr_obs::Table`] reporter (aligned text, markdown, and JSON).

use std::fmt;
use vdr_obs::Table;

/// One regenerated figure: a table plus free-form validation notes.
#[derive(Debug, Clone)]
pub struct FigureReport {
    pub id: &'static str,
    pub title: String,
    /// First row is the header.
    pub table: Vec<Vec<String>>,
    /// Small-scale validation lines, calibration caveats, etc.
    pub notes: Vec<String>,
}

impl FigureReport {
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        FigureReport {
            id,
            title: title.into(),
            table: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn header(&mut self, cols: &[&str]) -> &mut Self {
        self.table
            .insert(0, cols.iter().map(|s| s.to_string()).collect());
        self
    }

    pub fn row(&mut self, cols: Vec<String>) -> &mut Self {
        self.table.push(cols);
        self
    }

    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }

    /// The figure as a [`vdr_obs::Table`] — one reporter for the aligned
    /// text, markdown, and JSON outputs.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(format!("{} — {}", self.id, self.title));
        if let Some(header) = self.table.first() {
            t = t.header(header.iter().cloned());
        }
        for row in self.table.iter().skip(1) {
            t.row(row.iter().cloned());
        }
        for n in &self.notes {
            t.note(n.clone());
        }
        t
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table().to_text())
    }
}

impl serde::Serialize for FigureReport {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("id".into(), serde::Content::Str(self.id.to_string())),
            (
                "figure".into(),
                serde::Serialize::serialize(&self.to_table()),
            ),
        ])
    }
}

/// Markdown rendering (used to regenerate EXPERIMENTS.md).
pub fn to_markdown(report: &FigureReport) -> String {
    let mut out = report.to_table().to_markdown();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_and_markdown() {
        let mut r = FigureReport::new("figX", "demo");
        r.header(&["size", "paper", "model"]);
        r.row(vec!["50 GB".into(), "~2 min".into(), "2.3 min".into()]);
        r.note("validated at small scale");
        let text = r.to_string();
        assert!(text.contains("figX"));
        assert!(text.contains("50 GB"));
        assert!(text.contains("* validated"));
        let md = to_markdown(&r);
        assert!(md.starts_with("### figX"));
        assert!(md.contains("| 50 GB |"));
    }
}
