//! Report formatting for the figure harness.

use std::fmt;

/// One regenerated figure: a table plus free-form validation notes.
#[derive(Debug, Clone)]
pub struct FigureReport {
    pub id: &'static str,
    pub title: String,
    /// First row is the header.
    pub table: Vec<Vec<String>>,
    /// Small-scale validation lines, calibration caveats, etc.
    pub notes: Vec<String>,
}

impl FigureReport {
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        FigureReport {
            id,
            title: title.into(),
            table: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn header(&mut self, cols: &[&str]) -> &mut Self {
        self.table
            .insert(0, cols.iter().map(|s| s.to_string()).collect());
        self
    }

    pub fn row(&mut self, cols: Vec<String>) -> &mut Self {
        self.table.push(cols);
        self
    }

    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        if !self.table.is_empty() {
            // Column widths.
            let ncols = self.table.iter().map(Vec::len).max().unwrap_or(0);
            let mut widths = vec![0usize; ncols];
            for row in &self.table {
                for (i, cell) in row.iter().enumerate() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
            for (ri, row) in self.table.iter().enumerate() {
                write!(f, "  ")?;
                for (i, cell) in row.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{cell:>width$}", width = widths[i])?;
                }
                writeln!(f)?;
                if ri == 0 {
                    let total: usize = widths.iter().sum::<usize>() + 3 * (ncols - 1) + 2;
                    writeln!(f, "  {}", "-".repeat(total))?;
                }
            }
        }
        for n in &self.notes {
            writeln!(f, "  • {n}")?;
        }
        Ok(())
    }
}

/// Markdown rendering (used to regenerate EXPERIMENTS.md).
pub fn to_markdown(report: &FigureReport) -> String {
    let mut out = format!("### {} — {}\n\n", report.id, report.title);
    if !report.table.is_empty() {
        let header = &report.table[0];
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
        for row in &report.table[1..] {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
    }
    for n in &report.notes {
        out.push_str(&format!("- {n}\n"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_and_markdown() {
        let mut r = FigureReport::new("figX", "demo");
        r.header(&["size", "paper", "model"]);
        r.row(vec!["50 GB".into(), "~2 min".into(), "2.3 min".into()]);
        r.note("validated at small scale");
        let text = r.to_string();
        assert!(text.contains("figX"));
        assert!(text.contains("50 GB"));
        assert!(text.contains("• validated"));
        let md = to_markdown(&r);
        assert!(md.starts_with("### figX"));
        assert!(md.contains("| 50 GB |"));
    }
}
