//! Figures 1, 12, 13, 14, 21 — the data-transfer evaluation.

use crate::report::FigureReport;
use std::sync::Arc;
use std::time::Instant;
use vdr_cluster::{HardwareProfile, Ledger, SimCluster, SimDuration};
use vdr_distr::DistributedR;
use vdr_sparksim::model_spark_load;
use vdr_transfer::model::{model_dr_disk, model_parallel_odbc, model_single_odbc, model_vft};
use vdr_transfer::{install_export_function, ClusterShape, OdbcLoader, TableShape, TransferPolicy};
use vdr_verticadb::{Segmentation, VerticaDb};
use vdr_workloads::transfer_table;

fn profile() -> HardwareProfile {
    HardwareProfile::paper_testbed()
}

fn five_nodes() -> ClusterShape {
    ClusterShape {
        db_nodes: 5,
        r_nodes: 5,
        r_instances_per_node: 24,
        colocated: false,
    }
}

fn twelve_nodes() -> ClusterShape {
    ClusterShape {
        db_nodes: 12,
        r_nodes: 12,
        r_instances_per_node: 24,
        colocated: false,
    }
}

fn mins(d: SimDuration) -> String {
    format!("{:.1} min", d.as_minutes())
}

/// A real small-scale run of the three loaders for validation lines.
pub struct SmallScaleTransfer {
    pub rows: u64,
    pub vft_sim: SimDuration,
    pub vft_wall_ms: f64,
    pub odbc_parallel_sim: SimDuration,
    pub odbc_parallel_wall_ms: f64,
    pub odbc_single_sim: SimDuration,
    pub odbc_single_wall_ms: f64,
}

/// Run all three loaders on a `nodes`-node cluster with `rows` rows,
/// verifying each delivers every row exactly once.
pub fn run_small_scale(nodes: usize, rows: usize) -> SmallScaleTransfer {
    let cluster = SimCluster::for_tests(nodes);
    let db = VerticaDb::new(cluster.clone());
    transfer_table(
        &db,
        "t",
        rows,
        Segmentation::Hash {
            column: "id".into(),
        },
        5,
    )
    .unwrap();
    let dr = DistributedR::on_all_nodes(cluster, 4).unwrap();
    let vft = install_export_function(&db);
    let cols = ["id", "a", "b", "c", "d", "e"];
    let expect = (rows as f64 - 1.0) * rows as f64 / 2.0;
    let check = |arr: &vdr_distr::DArray| {
        let sums = arr
            .map_partitions(|_, p| (0..p.nrow).map(|r| p.row(r)[0]).sum::<f64>())
            .unwrap();
        assert_eq!(
            sums.iter().sum::<f64>(),
            expect,
            "loader lost or duplicated rows"
        );
    };

    let ledger = Ledger::new();
    let t = Instant::now();
    let (arr, vft_report) = vft
        .db2darray(&db, &dr, "t", &cols, TransferPolicy::Locality, &ledger)
        .unwrap();
    let vft_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    check(&arr);
    drop(arr);

    let t = Instant::now();
    let (arr, par_report) = OdbcLoader::load_parallel(&db, &dr, "t", &cols, "id", &ledger).unwrap();
    let par_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    check(&arr);
    drop(arr);

    let t = Instant::now();
    let (arr, single_report) = OdbcLoader::load_single(&db, &dr, "t", &cols, &ledger).unwrap();
    let single_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    check(&arr);

    SmallScaleTransfer {
        rows: rows as u64,
        vft_sim: vft_report.total(),
        vft_wall_ms,
        odbc_parallel_sim: par_report.total(),
        odbc_parallel_wall_ms: par_wall_ms,
        odbc_single_sim: single_report.total(),
        odbc_single_wall_ms: single_wall_ms,
    }
}

fn small_scale_notes(report: &mut FigureReport, s: &SmallScaleTransfer) {
    report.note(format!(
        "small-scale validation ({} rows, real execution, exactly-once checked): \
         VFT {} sim / {:.0} ms wall; parallel ODBC {} sim / {:.0} ms wall; \
         single ODBC {} sim / {:.0} ms wall",
        s.rows,
        s.vft_sim,
        s.vft_wall_ms,
        s.odbc_parallel_sim,
        s.odbc_parallel_wall_ms,
        s.odbc_single_sim,
        s.odbc_single_wall_ms
    ));
}

/// Figure 1: extracting data from a database is slow (single R vs 120-way
/// parallel ODBC, 5 nodes, 50–150 GB).
pub fn figure1() -> FigureReport {
    let p = profile();
    let mut r = FigureReport::new("fig1", "Extracting data over ODBC (5 nodes; paper: ~1 h for 50 GB single-R, ~40 min for 150 GB with 120 connections)");
    r.header(&[
        "table",
        "paper single-R",
        "model single-R",
        "paper 120-conn",
        "model 120-conn",
    ]);
    let paper_single = ["~55 min", "~110 min", "~165 min"];
    let paper_par = ["~13 min", "~27 min", "~40 min"];
    for (i, gb) in [50u64, 100, 150].iter().enumerate() {
        let t = TableShape::transfer_table_gb(*gb);
        let single = model_single_odbc(&p, t, five_nodes());
        let par = model_parallel_odbc(&p, t, five_nodes());
        r.row(vec![
            format!("{gb} GB"),
            paper_single[i].into(),
            mins(single.total()),
            paper_par[i].into(),
            mins(par.total()),
        ]);
    }
    r.note(
        "paper values for 100/150 GB single-R and 50/100 GB parallel are read off the chart (~)",
    );
    small_scale_notes(&mut r, &run_small_scale(3, 12_000));
    r
}

/// Figure 12: ODBC vs VFT on a 5-node cluster.
pub fn figure12() -> FigureReport {
    let p = profile();
    let mut r = FigureReport::new(
        "fig12",
        "ODBC vs Vertica Fast Transfer, 5-node cluster (paper: 150 GB in <6 min vs ~40 min, ≈6×)",
    );
    r.header(&[
        "table",
        "paper ODBC",
        "model ODBC",
        "paper VFT",
        "model VFT",
        "model speedup",
    ]);
    let paper_odbc = ["~13 min", "~27 min", "~40 min"];
    let paper_vft = ["~2 min", "~4 min", "<6 min"];
    for (i, gb) in [50u64, 100, 150].iter().enumerate() {
        let t = TableShape::transfer_table_gb(*gb);
        let odbc = model_parallel_odbc(&p, t, five_nodes()).total();
        let vft = model_vft(&p, t, five_nodes()).total();
        r.row(vec![
            format!("{gb} GB"),
            paper_odbc[i].into(),
            mins(odbc),
            paper_vft[i].into(),
            mins(vft),
            format!("{:.1}×", odbc / vft),
        ]);
    }
    small_scale_notes(&mut r, &run_small_scale(3, 12_000));
    r
}

/// Figure 13: ODBC vs VFT on a 12-node cluster up to 400 GB.
pub fn figure13() -> FigureReport {
    let p = profile();
    let mut r = FigureReport::new(
        "fig13",
        "ODBC vs Vertica Fast Transfer, 12-node cluster (paper: 400 GB in <10 min vs ~1 h)",
    );
    r.header(&[
        "table",
        "paper ODBC",
        "model ODBC",
        "paper VFT",
        "model VFT",
        "model speedup",
    ]);
    let paper_odbc = ["~18 min", "~30 min", "~45 min", "~55 min"];
    let paper_vft = ["~3 min", "~5 min", "~8 min", "<10 min"];
    for (i, gb) in [100u64, 200, 300, 400].iter().enumerate() {
        let t = TableShape::transfer_table_gb(*gb);
        let odbc = model_parallel_odbc(&p, t, twelve_nodes()).total();
        let vft = model_vft(&p, t, twelve_nodes()).total();
        r.row(vec![
            format!("{gb} GB"),
            paper_odbc[i].into(),
            mins(odbc),
            paper_vft[i].into(),
            mins(vft),
            format!("{:.1}×", odbc / vft),
        ]);
    }
    small_scale_notes(&mut r, &run_small_scale(4, 16_000));
    r
}

/// Figure 14: VFT time breakdown as R instances per server vary (400 GB,
/// 12 nodes).
pub fn figure14() -> FigureReport {
    let p = profile();
    let t = TableShape::transfer_table_gb(400);
    let mut r = FigureReport::new(
        "fig14",
        "VFT time breakdown, 400 GB on 12 nodes (paper: DB part constant; R part shrinks with instances, ≈half the total at 2/server)",
    );
    r.header(&[
        "R instances/server",
        "model DB part",
        "model R part",
        "model total",
        "R share",
    ]);
    for instances in [2usize, 4, 8, 12, 16, 24] {
        let shape = ClusterShape {
            r_instances_per_node: instances,
            ..twelve_nodes()
        };
        let rep = model_vft(&p, t, shape);
        r.row(vec![
            instances.to_string(),
            mins(rep.db_time),
            mins(rep.client_time),
            mins(rep.total()),
            format!(
                "{:.0}%",
                100.0 * rep.client_time.as_secs() / rep.total().as_secs()
            ),
        ]);
    }
    // Small-scale validation: the real split also shows a shrinking R part.
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster.clone());
    transfer_table(&db, "t", 12_000, Segmentation::RoundRobin, 5).unwrap();
    let vft = install_export_function(&db);
    let mut parts = Vec::new();
    for instances in [2usize, 8] {
        let dr =
            DistributedR::start(cluster.clone(), cluster.node_ids(), instances, u64::MAX).unwrap();
        let ledger = Ledger::new();
        let (_, rep) = vft
            .db2darray(
                &db,
                &dr,
                "t",
                &["id", "a", "b", "c", "d", "e"],
                TransferPolicy::Locality,
                &ledger,
            )
            .unwrap();
        parts.push((instances, rep.db_time, rep.client_time));
    }
    r.note(format!(
        "small-scale validation (12k rows, real runs): {} instances → db {} + R {}; \
         {} instances → db {} + R {} (R part shrinks, DB part steady)",
        parts[0].0, parts[0].1, parts[0].2, parts[1].0, parts[1].1, parts[1].2
    ));
    assert!(
        parts[1].2.as_secs() < parts[0].2.as_secs(),
        "R part must shrink with more instances"
    );
    r
}

/// Figure 21: end-to-end K-means — load + iterate across three stacks.
pub fn figure21() -> FigureReport {
    let p = profile();
    // 240M rows × 100 features ≈ 192 GB raw on 4 nodes.
    let t = TableShape {
        rows: 240_000_000,
        cols: 100,
        disk_bytes: 192_000_000_000,
    };
    let shape = ClusterShape {
        db_nodes: 4,
        r_nodes: 4,
        r_instances_per_node: 24,
        colocated: false,
    };
    let mut r = FigureReport::new(
        "fig21",
        "End-to-end K-means on 4 nodes, 240M×100 (paper: DR loads 15 min + 16 min/iter ≈ Spark 11 min + 21 min/iter; DR-disk loads in 5 min)",
    );
    r.header(&[
        "stack",
        "paper load",
        "model load",
        "paper per-iter",
        "model per-iter",
    ]);
    let vft_load = model_vft(&p, t, shape).total();
    let spark_load = model_spark_load(&p, t.rows, t.cols, t.raw_bytes(), 4, 24);
    let disk_load = model_dr_disk(&p, t, shape).total();
    let dr_iter = vdr_ml::costmodel::kmeans_iteration(
        &p,
        vdr_ml::costmodel::KmeansEngine::DistributedR,
        vdr_cluster::KernelRegime::Native,
        t.rows,
        1000,
        100,
        4,
        24,
    );
    let spark_iter = vdr_ml::costmodel::kmeans_iteration(
        &p,
        vdr_ml::costmodel::KmeansEngine::Spark,
        vdr_cluster::KernelRegime::Native,
        t.rows,
        1000,
        100,
        4,
        24,
    );
    r.row(vec![
        "Distributed R + Vertica (VFT)".into(),
        "15 min".into(),
        mins(vft_load),
        "16 min".into(),
        mins(dr_iter),
    ]);
    r.row(vec![
        "Spark + HDFS".into(),
        "11 min".into(),
        mins(spark_load),
        "21 min".into(),
        mins(spark_iter),
    ]);
    r.row(vec![
        "DR-disk (local ext4)".into(),
        "5 min".into(),
        mins(disk_load),
        "16 min".into(),
        mins(dr_iter),
    ]);
    r.note(format!(
        "end-to-end with 1 iteration: DR {} vs Spark {} — 'almost the same time', as the paper reports",
        mins(vft_load + dr_iter),
        mins(spark_load + spark_iter)
    ));

    // Small-scale real end-to-end: the same K-means on both stacks from the
    // same initial centers must produce identical centers.
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster.clone());
    let centers = vec![vec![0.0, 0.0], vec![15.0, 15.0]];
    vdr_workloads::clusters_table(
        &db,
        "pts",
        1_500,
        &centers,
        0.5,
        Segmentation::RoundRobin,
        9,
    )
    .unwrap();
    let dr = DistributedR::on_all_nodes(cluster.clone(), 2).unwrap();
    let vft = install_export_function(&db);
    let ledger = Ledger::new();
    let (arr, _) = vft
        .db2darray(
            &db,
            &dr,
            "pts",
            &["f1", "f2"],
            TransferPolicy::Uniform,
            &ledger,
        )
        .unwrap();
    let init = vec![vec![1.0, 1.0], vec![10.0, 10.0]];
    let dr_model = {
        // Lloyd from fixed centers through the distributed runtime.
        let mut cs: Vec<f64> = init.iter().flatten().copied().collect();
        for _ in 0..20 {
            let partials = arr
                .map_partitions(|_, part| vdr_ml::kmeans::assign_partial(&part.data, 2, &cs))
                .unwrap();
            let merged =
                vdr_ml::reduce::tree_merge(partials, |a, b| vdr_ml::kmeans::merge_partials(a, &b))
                    .unwrap();
            for c in 0..2 {
                if merged.counts[c] > 0 {
                    let count = merged.counts[c] as f64;
                    for (cj, s) in cs[c * 2..(c + 1) * 2]
                        .iter_mut()
                        .zip(&merged.sums[c * 2..(c + 1) * 2])
                    {
                        *cj = s / count;
                    }
                }
            }
        }
        cs.chunks_exact(2).map(<[f64]>::to_vec).collect::<Vec<_>>()
    };
    let hdfs = Arc::new(vdr_sparksim::HdfsSim::new(cluster.clone(), 3));
    let (_, _, flat) = arr.gather().unwrap();
    hdfs.put_matrix("pts", &flat, 2, 512);
    let sc = vdr_sparksim::SparkContext::new(cluster.clone(), hdfs, 2);
    let (matrix, _) = sc.load_matrix("pts", &ledger).unwrap();
    let spark_model =
        vdr_sparksim::mllib::spark_kmeans_with_centers(&cluster, &matrix, init, 20).unwrap();
    for (a, b) in dr_model.iter().zip(&spark_model.centers) {
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x - y).abs() < 1e-9,
                "stacks diverged: {dr_model:?} vs {:?}",
                spark_model.centers
            );
        }
    }
    r.note("small-scale validation: identical K-means centers from both stacks on the same data (apples-to-apples kernel confirmed)");
    r
}
