//! Design-choice ablations — not paper figures, but benchmarks for the
//! design decisions the paper argues for in prose (DESIGN.md's ablation
//! index).

use crate::report::FigureReport;
use std::sync::Arc;
use std::time::Instant;
use vdr_cluster::{HardwareProfile, Ledger, NodeId, PhaseKind, PhaseRecorder, SimCluster};
use vdr_columnar::encoding::Encoding;
use vdr_columnar::{encode_batch_with, Batch, Column, DataType, Schema};
use vdr_distr::DistributedR;
use vdr_ml::{hpdkmeans, KmeansOptions};
use vdr_transfer::odbc::render_rows;
use vdr_transfer::{install_export_function, TransferPolicy};
use vdr_verticadb::{Dfs, Segmentation, VerticaDb};
use vdr_workloads::{clusters_table, transfer_table};

/// Ablation: the locality policy on a skewed table creates stragglers; the
/// uniform policy removes them (the Section 3.2 trade-off, quantified).
pub fn policy_skew() -> FigureReport {
    let mut r = FigureReport::new(
        "abl-policy",
        "Transfer policy × skewed segmentation → straggler effect on K-means",
    );
    let cluster = SimCluster::for_tests(4);
    let db = VerticaDb::new(cluster.clone());
    let centers: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64 * 10.0; 4]).collect();
    clusters_table(
        &db,
        "pts",
        3_000,
        &centers,
        0.5,
        Segmentation::Skewed {
            weights: vec![7.0, 1.0, 1.0, 1.0],
        },
        11,
    )
    .unwrap();
    let dr = DistributedR::on_all_nodes(cluster, 2).unwrap();
    let vft = install_export_function(&db);

    r.header(&[
        "policy",
        "partition rows",
        "straggler ratio",
        "k-means iters",
        "wall",
    ]);
    for policy in [TransferPolicy::Locality, TransferPolicy::Uniform] {
        let ledger = Ledger::new();
        let (arr, _) = vft
            .db2darray(&db, &dr, "pts", &["f1", "f2", "f3", "f4"], policy, &ledger)
            .unwrap();
        let rows: Vec<u64> = arr.partition_sizes().iter().map(|s| s.0).collect();
        let max = *rows.iter().max().unwrap() as f64;
        let avg = rows.iter().sum::<u64>() as f64 / rows.len() as f64;
        let t = Instant::now();
        let model = hpdkmeans(
            &arr,
            &KmeansOptions {
                k: 4,
                max_iterations: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let wall = t.elapsed();
        r.row(vec![
            policy.as_param().into(),
            format!("{rows:?}"),
            format!("{:.2}", max / avg),
            model.iterations.to_string(),
            format!("{wall:?}"),
        ]);
    }
    r.note("straggler ratio = slowest partition / average; per-iteration time on a synchronous cluster is gated by the slowest partition, so ratio ≈ slowdown of the locality policy under skew");
    r
}

/// Ablation: binary columnar blocks vs ODBC-style text rows on the wire.
pub fn wire_encoding() -> FigureReport {
    let mut r = FigureReport::new(
        "abl-encoding",
        "Wire encoding: binary columnar blocks (VFT) vs text rows (ODBC)",
    );
    // A representative 6-column numeric batch.
    let n = 50_000usize;
    let schema = Schema::of(&[
        ("id", DataType::Int64),
        ("a", DataType::Float64),
        ("b", DataType::Float64),
        ("c", DataType::Float64),
        ("d", DataType::Float64),
        ("e", DataType::Float64),
    ]);
    let mut cols: Vec<Column> = vec![Column::from_i64((0..n as i64).collect())];
    for k in 0..5 {
        cols.push(Column::from_f64(
            (0..n)
                .map(|i| ((i * (k + 3)) % 9973) as f64 * 0.739 - 3000.0)
                .collect(),
        ));
    }
    let batch = Batch::new(schema, cols).unwrap();
    let raw = batch.byte_size();

    let t = Instant::now();
    let binary_auto = encode_batch_with(&batch, None);
    let enc_auto_wall = t.elapsed();
    let binary_plain = encode_batch_with(&batch, Some(Encoding::Plain));
    let t = Instant::now();
    let text = render_rows(&batch);
    let text_wall = t.elapsed();

    let p = HardwareProfile::paper_testbed();
    let values = batch.num_values() as f64;
    r.header(&["format", "bytes", "vs raw", "model per-value cost"]);
    r.row(vec![
        "binary (auto-encoded)".into(),
        binary_auto.len().to_string(),
        format!("{:.2}×", binary_auto.len() as f64 / raw as f64),
        format!("{:.0} ns (VFT export)", p.costs.vft_export_ns_per_value),
    ]);
    r.row(vec![
        "binary (plain)".into(),
        binary_plain.len().to_string(),
        format!("{:.2}×", binary_plain.len() as f64 / raw as f64),
        format!("{:.0} ns", p.costs.vft_export_ns_per_value),
    ]);
    r.row(vec![
        "text rows (ODBC)".into(),
        text.len().to_string(),
        format!("{:.2}×", text.len() as f64 / raw as f64),
        format!(
            "{:.0} ns encode + {:.0} ns parse",
            p.costs.odbc_server_encode_ns_per_value, p.costs.odbc_client_parse_ns_per_value
        ),
    ]);
    r.note(format!(
        "measured at {n} rows: binary encode {enc_auto_wall:?}, text render {text_wall:?}; text inflates the wire {:.1}× over binary",
        text.len() as f64 / binary_auto.len() as f64
    ));
    let _ = values;
    r
}

/// Ablation: pipelined vs sequential staging of the VFT phases.
pub fn pipelining() -> FigureReport {
    let mut r = FigureReport::new(
        "abl-pipelining",
        "Overlapping disk → serialize → stream vs running the stages back-to-back",
    );
    let p = HardwareProfile::paper_testbed();
    r.header(&["table", "pipelined (VFT)", "sequential stages", "saved"]);
    for gb in [100u64, 400] {
        let t = vdr_transfer::TableShape::transfer_table_gb(gb);
        // Build identical usage, combine both ways.
        let make = |kind: PhaseKind| {
            let rec = PhaseRecorder::new("abl", kind, 12);
            for nidx in 0..12usize {
                let node = NodeId(nidx);
                rec.disk_read(node, t.disk_bytes / 12);
                rec.net(node, NodeId((nidx + 1) % 12), t.raw_bytes() / 12);
                rec.set_lanes(node, p.costs.vft_export_lanes);
                rec.cpu_work(
                    node,
                    t.values() as f64 / 12.0,
                    p.costs.vft_export_ns_per_value,
                );
            }
            rec.duration(&p)
        };
        let pipe = make(PhaseKind::Pipelined);
        let seq = make(PhaseKind::Sequential);
        r.row(vec![
            format!("{gb} GB"),
            format!("{pipe}"),
            format!("{seq}"),
            format!("{:.0}%", 100.0 * (1.0 - pipe.as_secs() / seq.as_secs())),
        ]);
    }
    r.note("the paper observes the network is not the bottleneck — with pipelining, the slowest stage (export CPU) hides the disk and wire time entirely");
    r
}

/// Ablation: partition-size hint (`psize`) vs block count and balance.
pub fn buffering() -> FigureReport {
    let mut r = FigureReport::new(
        "abl-buffering",
        "psize buffering hint: block granularity vs distribution balance (uniform policy)",
    );
    let cluster = SimCluster::for_tests(4);
    let db = VerticaDb::new(cluster.clone());
    transfer_table(
        &db,
        "t",
        20_000,
        Segmentation::Skewed {
            weights: vec![5.0, 1.0, 1.0, 1.0],
        },
        3,
    )
    .unwrap();
    let dr = DistributedR::on_all_nodes(cluster, 4).unwrap();
    let vft = install_export_function(&db);
    r.header(&["psize (rows/block)", "partition rows", "balance (max/avg)"]);
    for psize in [20_000u64, 5_000, 1_000, 250] {
        let ledger = Ledger::new();
        let (arr, report) = vft
            .db2darray_opts(
                &db,
                &dr,
                "t",
                &["id", "a"],
                TransferPolicy::Uniform,
                &ledger,
                Some(psize),
            )
            .unwrap();
        assert_eq!(report.rows, 20_000);
        let rows: Vec<u64> = arr.partition_sizes().iter().map(|s| s.0).collect();
        let max = *rows.iter().max().unwrap() as f64;
        let avg = rows.iter().sum::<u64>() as f64 / rows.len() as f64;
        r.row(vec![
            psize.to_string(),
            format!("{rows:?}"),
            format!("{:.2}", max / avg),
        ]);
    }
    r.note("smaller blocks sprinkle rounder-robin and balance better, at the cost of more per-block overhead — the paper's default hint is rows ÷ total R instances");
    r
}

/// Ablation: DFS replication factor vs model availability under failures.
pub fn dfs_replication() -> FigureReport {
    let mut r = FigureReport::new(
        "abl-replication",
        "DFS replication factor vs model availability under node failures (4-node cluster)",
    );
    r.header(&[
        "replication",
        "survives any 1 failure",
        "survives any 2 failures",
    ]);
    for k in [1usize, 2, 3] {
        let cluster = SimCluster::for_tests(4);
        let dfs = Dfs::new(cluster.clone(), k);
        let rec = PhaseRecorder::new("w", PhaseKind::Sequential, 4);
        dfs.write(
            NodeId(0),
            "models/m",
            bytes::Bytes::from_static(b"blob"),
            &rec,
        )
        .unwrap();
        let survives = |down: &[NodeId]| {
            for n in down {
                dfs.set_node_down(*n);
            }
            let ok = dfs.read(NodeId(0), "models/m", &rec).is_ok();
            for n in down {
                dfs.set_node_up(*n);
            }
            ok
        };
        // Enumerate every 1- and 2-node failure combination.
        let mut one_ok = 0;
        for a in 0..4 {
            one_ok += survives(&[NodeId(a)]) as usize;
        }
        let mut two_ok = 0;
        let mut two_total = 0;
        for a in 0..4 {
            for b in a + 1..4 {
                two_total += 1;
                two_ok += survives(&[NodeId(a), NodeId(b)]) as usize;
            }
        }
        r.row(vec![
            k.to_string(),
            format!("{one_ok}/4"),
            format!("{two_ok}/{two_total}"),
        ]);
    }
    r.note("the paper replicates models so they are 'available at all nodes' with 'the same fault-tolerance guarantees as Vertica tables' — k ≥ 3 survives any double failure");
    let _ = Arc::strong_count(&Arc::new(()));
    r
}
