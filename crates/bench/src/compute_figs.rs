//! Figures 17–20 — the compute evaluation: R vs Distributed R and
//! Distributed R vs Spark.

use crate::report::FigureReport;
use std::time::Instant;
use vdr_cluster::{HardwareProfile, KernelRegime, SimCluster, SimDuration};
use vdr_distr::DistributedR;
use vdr_ml::costmodel::{glm_iteration, kmeans_iteration, r_kmeans_iteration, r_lm, KmeansEngine};
use vdr_ml::serial::{serial_kmeans, serial_lm};
use vdr_ml::{hpdglm, hpdkmeans, Family, GlmOptions, KmeansOptions};
use vdr_workloads::{gaussian_mixture, linear_data};

fn profile() -> HardwareProfile {
    HardwareProfile::paper_testbed()
}

fn mins(d: SimDuration) -> String {
    format!("{:.1} min", d.as_minutes())
}

/// Figure 17: K-means per-iteration, stock R vs Distributed R, 1–24 cores,
/// 1M×100, K=1000.
pub fn figure17() -> FigureReport {
    let p = profile();
    let mut r = FigureReport::new(
        "fig17",
        "K-means per-iteration on one node, 1M×100, K=1000 (paper: R flat at ~35 min; DR <4 min at ≥12 cores, 9×; plateau past 12 physical cores)",
    );
    r.header(&["cores", "model R", "model Distributed R", "speedup over R"]);
    let r_time = r_kmeans_iteration(&p, 1_000_000, 1000, 100);
    for cores in [1usize, 2, 4, 8, 12, 16, 24] {
        let dr = kmeans_iteration(
            &p,
            KmeansEngine::DistributedR,
            KernelRegime::RBound,
            1_000_000,
            1000,
            100,
            1,
            cores,
        );
        r.row(vec![
            cores.to_string(),
            mins(r_time),
            mins(dr),
            format!("{:.1}×", r_time / dr),
        ]);
    }
    r.note("R is single-threaded, so its per-iteration time is flat in the core count");

    // Small-scale real validation: the shared kernel really runs, serial and
    // distributed produce comparable within-cluster quality on real blobs.
    let centers: Vec<Vec<f64>> = (0..5)
        .map(|i| (0..8).map(|j| ((i * 7 + j) % 11) as f64 * 4.0).collect())
        .collect();
    let (pts, _) = gaussian_mixture(2_000, &centers, 0.3, 3);
    // Lloyd with random init can stall in a local optimum; like R users do,
    // take the best of a few restarts.
    let t = Instant::now();
    let serial = (1..=3)
        .map(|seed| serial_kmeans(&pts, 8, 5, 30, seed).unwrap())
        .min_by(|a, b| a.total_withinss.total_cmp(&b.total_withinss))
        .expect("three runs");
    let serial_wall = t.elapsed();
    let dr_rt = DistributedR::on_all_nodes(SimCluster::for_tests(1), 4).unwrap();
    let x = dr_rt.darray(4).unwrap();
    let chunk = pts.len() / 8 / 4 * 8;
    for part in 0..4 {
        let s = part * chunk;
        let e = if part == 3 { pts.len() } else { s + chunk };
        x.fill_partition(part, (e - s) / 8, 8, pts[s..e].to_vec())
            .unwrap();
    }
    let t = Instant::now();
    let distributed = hpdkmeans(
        &x,
        &KmeansOptions {
            k: 5,
            max_iterations: 30,
            ..Default::default()
        },
    )
    .unwrap();
    let dr_wall = t.elapsed();
    r.note(format!(
        "small-scale validation (10k×8 pts, k=5): serial (best of 3 restarts) WSS {:.0} in {serial_wall:?}, distributed (k-means++) WSS {:.0} in {dr_wall:?}",
        serial.total_withinss, distributed.total_withinss
    ));
    r
}

/// Figure 18: linear regression, stock R (QR) vs Distributed R
/// (Newton–Raphson), 100M×7.
pub fn figure18() -> FigureReport {
    let p = profile();
    let mut r = FigureReport::new(
        "fig18",
        "Linear regression on one node, 100M rows × 7 columns (paper: R >25 min; DR <10 min at 1 core, <1 min at 24; 9×)",
    );
    r.header(&[
        "cores",
        "model R (QR)",
        "model Distributed R (Newton-Raphson)",
    ]);
    let r_time = r_lm(&p, 100_000_000, 6);
    for cores in [1usize, 2, 4, 8, 12, 24] {
        // Gaussian Newton-Raphson: solve pass + deviance pass ≈ 2 passes.
        let dr = glm_iteration(&p, KernelRegime::RBound, 100_000_000, 6, 1, cores) * 2.0;
        r.row(vec![cores.to_string(), mins(r_time), mins(dr)]);
    }
    r.note("'Even though the final answer is the same, these techniques result in different running time' — verified below");

    // Real check: identical coefficients from both techniques.
    let (x, y) = linear_data(30_000, 2.0, &[1.0, -0.5, 0.25, 3.0, -1.0, 0.0], 0.02, 5);
    let t = Instant::now();
    let qr = serial_lm(&x, 6, &y).unwrap();
    let qr_wall = t.elapsed();
    let dr_rt = DistributedR::on_all_nodes(SimCluster::for_tests(1), 4).unwrap();
    let xa = dr_rt.darray(4).unwrap();
    let rows = 30_000 / 4;
    for part in 0..4 {
        xa.fill_partition(
            part,
            rows,
            6,
            x[part * rows * 6..(part + 1) * rows * 6].to_vec(),
        )
        .unwrap();
    }
    let ya = xa.clone_structure(1, 0.0).unwrap();
    for part in 0..4 {
        ya.fill_partition_on(
            ya.worker_of(part).unwrap(),
            part,
            rows,
            1,
            y[part * rows..(part + 1) * rows].to_vec(),
        )
        .unwrap();
    }
    let t = Instant::now();
    let nr = hpdglm(&xa, &ya, Family::Gaussian, &GlmOptions::default()).unwrap();
    let nr_wall = t.elapsed();
    let max_diff = qr
        .coefficients
        .iter()
        .zip(&nr.coefficients)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(max_diff < 1e-7, "techniques disagreed by {max_diff}");
    r.note(format!(
        "small-scale validation (30k×6): QR and Newton-Raphson coefficients agree to {max_diff:.1e} (QR {qr_wall:?}, NR {nr_wall:?} wall)"
    ));
    r
}

/// Figure 19: distributed regression weak scaling, 100 features.
pub fn figure19() -> FigureReport {
    let p = profile();
    let mut r = FigureReport::new(
        "fig19",
        "Distributed regression weak scaling, 100 features (paper: <2 min/iter at 30M rows/node; converges in 4 min / 2 iterations)",
    );
    r.header(&[
        "nodes",
        "rows",
        "paper per-iter",
        "model per-iter",
        "model converge (2 iters)",
    ]);
    for (nodes, rows) in [(1usize, 30_000_000u64), (4, 120_000_000), (8, 240_000_000)] {
        let iter = glm_iteration(&p, KernelRegime::Native, rows, 100, nodes, 24);
        r.row(vec![
            nodes.to_string(),
            format!("{}M", rows / 1_000_000),
            "<2 min".into(),
            mins(iter),
            mins(iter * 2.0),
        ]);
    }

    // Real weak-scaling accuracy check at small scale: the answer stays
    // exact as nodes and data grow proportionally (the paper's methodology:
    // "we can check for accuracy of the answers").
    let mut coefs = vec![0.0; 20];
    for (i, c) in coefs.iter_mut().enumerate() {
        *c = ((i as f64) - 10.0) / 10.0;
    }
    for (nodes, rows) in [(1usize, 4_000usize), (2, 8_000), (4, 16_000)] {
        let (x, y) = linear_data(rows, 1.0, &coefs, 0.0, 31);
        let dr = DistributedR::on_all_nodes(SimCluster::for_tests(nodes), 2).unwrap();
        let xa = dr.darray(nodes).unwrap();
        let per = rows / nodes;
        for part in 0..nodes {
            xa.fill_partition(
                part,
                per,
                20,
                x[part * per * 20..(part + 1) * per * 20].to_vec(),
            )
            .unwrap();
        }
        let ya = xa.clone_structure(1, 0.0).unwrap();
        for part in 0..nodes {
            ya.fill_partition_on(
                ya.worker_of(part).unwrap(),
                part,
                per,
                1,
                y[part * per..(part + 1) * per].to_vec(),
            )
            .unwrap();
        }
        let m = hpdglm(&xa, &ya, Family::Gaussian, &GlmOptions::default()).unwrap();
        let err: f64 = m.coefficients[1..]
            .iter()
            .zip(&coefs)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "{nodes} nodes: max coefficient error {err}");
    }
    r.note("small-scale validation: exact coefficient recovery at 1, 2, and 4 nodes with proportional data (weak scaling preserves the answer)");
    r
}

/// Figure 20: K-means, Distributed R vs Spark, weak scaling.
pub fn figure20() -> FigureReport {
    let p = profile();
    let mut r = FigureReport::new(
        "fig20",
        "K-means per-iteration vs Spark, K=1000, 100 features (paper: ~16 min vs ~21 min at 8 nodes; DR ≈20% faster; both weak-scale)",
    );
    r.header(&[
        "nodes",
        "rows",
        "model Distributed R",
        "model Spark",
        "DR advantage",
    ]);
    for (nodes, rows) in [(1usize, 60_000_000u64), (4, 240_000_000), (8, 480_000_000)] {
        let dr = kmeans_iteration(
            &p,
            KmeansEngine::DistributedR,
            KernelRegime::Native,
            rows,
            1000,
            100,
            nodes,
            24,
        );
        let spark = kmeans_iteration(
            &p,
            KmeansEngine::Spark,
            KernelRegime::Native,
            rows,
            1000,
            100,
            nodes,
            24,
        );
        r.row(vec![
            nodes.to_string(),
            format!("{}M", rows / 1_000_000),
            mins(dr),
            mins(spark),
            format!("{:.0}%", 100.0 * (spark / dr - 1.0)),
        ]);
    }
    r.note("'Spark and DR denote the same implementation of the K-means algorithm' — both run vdr_ml::kmeans::assign_partial here; the Figure 21 harness verifies identical centers from both stacks");
    r
}
