//! Figures 15–16 — in-database prediction scalability.

use crate::report::FigureReport;
use std::sync::Arc;
use std::time::Instant;
use vdr_cluster::{HardwareProfile, SimCluster, SimDuration};
use vdr_core::{register_prediction_functions, Model};
use vdr_ml::costmodel::{indb_predict, PredictKind};
use vdr_ml::models::{GlmModel, KmeansModel};
use vdr_verticadb::{Segmentation, VerticaDb};
use vdr_workloads::transfer_table;

fn secs(d: SimDuration) -> String {
    if d.as_secs() >= 60.0 {
        format!("{:.0} s ({})", d.as_secs(), d)
    } else {
        format!("{:.1} s", d.as_secs())
    }
}

/// Small-scale real prediction run: deploy a model and score a 60k-row
/// table, returning (rows, sim time, wall ms) — and asserting correctness.
fn run_small_predict(kmeans: bool) -> (u64, SimDuration, f64) {
    let cluster = SimCluster::for_tests(3);
    let db = VerticaDb::new(cluster);
    register_prediction_functions(&db);
    transfer_table(
        &db,
        "t",
        60_000,
        Segmentation::Hash {
            column: "id".into(),
        },
        4,
    )
    .unwrap();
    let rec = vdr_cluster::PhaseRecorder::new("save", vdr_cluster::PhaseKind::Sequential, 3);
    let (sql, model): (String, Model) = if kmeans {
        (
            "SELECT KmeansPredict(a, b, c, d, e USING PARAMETERS model='m') \
             OVER (PARTITION BEST) FROM t"
                .into(),
            Model::Kmeans(KmeansModel {
                centers: (0..10).map(|i| vec![i as f64 * 100.0 - 500.0; 5]).collect(),
                iterations: 1,
                total_withinss: 0.0,
            }),
        )
    } else {
        (
            "SELECT glmPredict(a, b, c, d, e USING PARAMETERS model='m') \
             OVER (PARTITION BEST) FROM t"
                .into(),
            Model::Glm(GlmModel {
                coefficients: vec![1.0, 0.1, -0.1, 0.2, -0.2, 0.3],
                intercept: true,
                family: vdr_ml::Family::Gaussian,
                deviance: 0.0,
                iterations: 1,
                converged: true,
            }),
        )
    };
    db.models()
        .save(
            vdr_cluster::NodeId(0),
            "m",
            "dbadmin",
            model.type_name(),
            "bench",
            model.to_bytes(),
            &rec,
        )
        .unwrap();
    let t = Instant::now();
    let out = db.query(&sql).unwrap();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        out.batch.num_rows(),
        60_000,
        "prediction must score every row"
    );
    (60_000, out.sim_time, wall_ms)
}

/// Figure 15: in-database K-means prediction, 10M → 1B rows on 5 nodes.
pub fn figure15() -> FigureReport {
    let p = HardwareProfile::paper_testbed();
    let mut r = FigureReport::new(
        "fig15",
        "In-database K-means prediction, 5 nodes (paper: <20 s at 10M rows, 318 s at 1B; near-linear)",
    );
    r.header(&["rows", "paper", "model"]);
    let paper = ["<20 s", "~40 s", "~160 s", "318 s"];
    let kind = PredictKind::Kmeans { k: 10, d: 6 };
    for (i, rows) in [10_000_000u64, 100_000_000, 500_000_000, 1_000_000_000]
        .iter()
        .enumerate()
    {
        let t = indb_predict(&p, kind, *rows, 5);
        r.row(vec![
            format!("{}M", rows / 1_000_000),
            paper[i].into(),
            secs(t),
        ]);
    }
    let big = indb_predict(&p, kind, 1_000_000_000, 5);
    let small = indb_predict(&p, kind, 10_000_000, 5);
    r.note(format!(
        "scaling net of startup: {:.0}× time for 100× rows (paper: 'close to linear scaling')",
        (big.as_secs() - p.costs.indb_predict_startup_s)
            / (small.as_secs() - p.costs.indb_predict_startup_s)
    ));
    let (rows, sim, wall) = run_small_predict(true);
    r.note(format!(
        "small-scale validation: scored {rows} real rows in {sim} sim / {wall:.0} ms wall, every row assigned"
    ));
    r
}

/// Figure 16: in-database linear regression prediction.
pub fn figure16() -> FigureReport {
    let p = HardwareProfile::paper_testbed();
    let mut r = FigureReport::new(
        "fig16",
        "In-database GLM prediction, 5 nodes (paper: <10 s at 10M rows, 206 s at 1B; near-linear)",
    );
    r.header(&["rows", "paper", "model"]);
    let paper = ["<10 s", "~25 s", "~105 s", "206 s"];
    let kind = PredictKind::Glm { p: 6 };
    for (i, rows) in [10_000_000u64, 100_000_000, 500_000_000, 1_000_000_000]
        .iter()
        .enumerate()
    {
        let t = indb_predict(&p, kind, *rows, 5);
        r.row(vec![
            format!("{}M", rows / 1_000_000),
            paper[i].into(),
            secs(t),
        ]);
    }
    r.note("GLM prediction is cheaper than K-means per row (coefficients vs K distance computations) — same ordering as the paper");
    let (rows, sim, wall) = run_small_predict(false);
    r.note(format!(
        "small-scale validation: scored {rows} real rows in {sim} sim / {wall:.0} ms wall"
    ));
    let _ = Arc::strong_count(&Arc::new(()));
    r
}
