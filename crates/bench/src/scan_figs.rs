//! Scan-path figure — projection pushdown and the decoded-block cache.
//!
//! Not a paper figure: the paper treats the scan as a black box feeding
//! the prediction operators. This report makes the overhauled scan path
//! observable in the same `figures --json` output CI smoke-runs, so the
//! scan counters (`exec.scan.cols_skipped`, `scan.cache.{hit,miss}`,
//! `scan.decode.ns_per_value`) are exercised end to end on every run.

use crate::report::FigureReport;
use std::time::Instant;
use vdr_cluster::SimCluster;
use vdr_columnar::{Batch, Column, DataType, Schema, Value};
use vdr_obs::MetricsSnapshot;
use vdr_verticadb::{Segmentation, TableDef, VerticaDb};

const NODES: usize = 3;
const ROWS: usize = 20_000;
const FLOAT_COLS: usize = 7; // plus the id column

fn delta(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
    after.counter_total(name) - before.counter_total(name)
}

/// Scan-path micro-report: one narrow query cold (projection pushdown,
/// cache miss) and warm (cache hit, zero decode), with the obs counters
/// that prove each mechanism fired.
pub fn scan_path() -> FigureReport {
    let db = VerticaDb::new(SimCluster::for_tests(NODES));
    let mut fields = vec![("id".to_string(), DataType::Int64)];
    for i in 0..FLOAT_COLS {
        fields.push((format!("c{i}"), DataType::Float64));
    }
    let schema = Schema::of(
        &fields
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    db.create_table(TableDef {
        name: "scanfig".into(),
        schema: schema.clone(),
        segmentation: Segmentation::RoundRobin,
    })
    .unwrap();
    let mut cols = vec![Column::from_i64((0..ROWS as i64).collect())];
    for c in 0..FLOAT_COLS {
        cols.push(Column::from_f64(
            (0..ROWS).map(|r| r as f64 * (c + 1) as f64).collect(),
        ));
    }
    db.copy("scanfig", vec![Batch::new(schema, cols).unwrap()])
        .unwrap();

    let obs = vdr_obs::global();
    let query = "SELECT sum(c0) FROM scanfig";
    let expected: f64 = (0..ROWS).map(|r| r as f64).sum();

    let mut r = FigureReport::new(
        "scan",
        "Scan path: projection pushdown + decoded-block cache (not a paper figure)",
    );
    r.header(&[
        "pass",
        "wall ms",
        "exec.scan.cols_skipped",
        "scan.cache.hit",
        "scan.cache.miss",
        "decode ns/value",
    ]);

    for pass in ["cold", "warm"] {
        let before = obs.metrics().snapshot();
        let t = Instant::now();
        let out = db.query(query).unwrap();
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let after = obs.metrics().snapshot();
        match out.batch.row(0)[0] {
            Value::Float64(s) => assert!(
                (s - expected).abs() < 1e-6,
                "scan figure query must stay correct"
            ),
            ref v => panic!("unexpected aggregate value {v:?}"),
        }
        let hist = |s: &MetricsSnapshot| {
            s.histogram_total("scan.decode.ns_per_value")
                .map(|h| (h.count, h.sum))
                .unwrap_or((0, 0.0))
        };
        let (hb, ha) = (hist(&before), hist(&after));
        let ns_per_value = if ha.0 == hb.0 {
            "0 (cache)".to_string()
        } else {
            format!("{:.1}", (ha.1 - hb.1) / (ha.0 - hb.0) as f64)
        };
        r.row(vec![
            pass.into(),
            format!("{wall_ms:.3}"),
            delta(&before, &after, "exec.scan.cols_skipped").to_string(),
            delta(&before, &after, "scan.cache.hit").to_string(),
            delta(&before, &after, "scan.cache.miss").to_string(),
            ns_per_value,
        ]);
    }
    r.note(format!(
        "{ROWS} rows x {} cols on {NODES} nodes; the query references 1 column, so the cold pass \
         skips {FLOAT_COLS} per-node column decodes and the warm pass is served entirely from the \
         decoded-block cache",
        FLOAT_COLS + 1
    ));
    r.note(
        "counters are process-global deltas around each query; cols_skipped > 0 on the cold pass \
         and cache.hit > 0 with zero new decode samples on the warm pass are the invariants CI checks",
    );
    r
}
