//! Distributed-training figure — blocked kernels and train-while-loading.
//!
//! Not a paper figure: Section 5's model-creation numbers are covered by
//! Figures 17–19. This report makes the training overhaul observable in the
//! same `figures --json` output CI smoke-runs: it times a staged fit
//! (transfer, then train) against `glm_while_loading` /
//! `kmeans_while_loading` on identical tables, and surfaces the
//! `ml.train.*` counters (`overlap_ns` > 0 is the invariant CI checks —
//! iteration-0 statistics really were folded while partitions were still
//! arriving).

use crate::report::FigureReport;
use std::time::Instant;
use vdr_cluster::{Ledger, SimCluster};
use vdr_distr::DistributedR;
use vdr_ml::{hpdglm, hpdkmeans, Family, GlmOptions, KmeansOptions};
use vdr_obs::MetricsSnapshot;
use vdr_transfer::{
    glm_while_loading, install_export_function, kmeans_while_loading, TransferPolicy,
};
use vdr_verticadb::Segmentation;
use vdr_workloads::{clusters_table, regression_table};

const NODES: usize = 3;
const ROWS: usize = 24_000;

fn delta(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
    after.counter_total(name) - before.counter_total(name)
}

/// Staged load-then-train vs pipelined train-while-loading on one table,
/// for GLM (gaussian + binomial warm-start behaviour is identical; we run
/// gaussian) and k-means.
pub fn train_pipeline() -> FigureReport {
    let cluster = SimCluster::for_tests(NODES);
    let db = vdr_verticadb::VerticaDb::new(cluster.clone());
    let truth = [2.0, -1.0, 0.5, 0.25];
    regression_table(
        &db,
        "trainfig",
        ROWS,
        1.0,
        &truth,
        0.05,
        Segmentation::RoundRobin,
        17,
    )
    .unwrap();
    let centers: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![12.0, 12.0], vec![-12.0, 10.0]];
    clusters_table(
        &db,
        "trainfig_pts",
        ROWS / 3,
        &centers,
        0.8,
        Segmentation::RoundRobin,
        23,
    )
    .unwrap();

    let dr = DistributedR::on_all_nodes(cluster, 2).unwrap();
    let vft = install_export_function(&db);
    let obs = vdr_obs::global();
    let xcols = ["x1", "x2", "x3", "x4"];

    let mut r = FigureReport::new(
        "train",
        "Model creation: staged load-then-train vs train-while-loading (not a paper figure)",
    );
    r.header(&[
        "pipeline",
        "wall ms",
        "rows",
        "ml.train.overlap_ns",
        "converged/centers",
    ]);

    // -- staged GLM: transfer first, then fit.
    let ledger = Ledger::new();
    let t = Instant::now();
    let mut fcols = xcols.to_vec();
    fcols.push("y");
    let (xy, rep) = vft
        .db2darray(
            &db,
            &dr,
            "trainfig",
            &fcols,
            TransferPolicy::Locality,
            &ledger,
        )
        .unwrap();
    // Staged path refits from the joint matrix's columns; timing covers
    // transfer + fit like the pipelined path does.
    let staged_model = {
        let x = xy.split_columns(&[0, 1, 2, 3]).unwrap();
        let y = xy.split_columns(&[4]).unwrap();
        hpdglm(&x, &y, Family::Gaussian, &GlmOptions::default()).unwrap()
    };
    let staged_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(staged_model.converged);
    r.row(vec![
        "glm staged".into(),
        format!("{staged_ms:.3}"),
        rep.rows.to_string(),
        "0".into(),
        format!("converged={}", staged_model.converged),
    ]);

    // -- pipelined GLM: iteration-0 statistics fold as partitions land.
    let ledger = Ledger::new();
    let before = obs.metrics().snapshot();
    let t = Instant::now();
    let fit = glm_while_loading(
        &vft,
        &db,
        &dr,
        "trainfig",
        &xcols,
        "y",
        Family::Gaussian,
        &GlmOptions::default(),
        TransferPolicy::Locality,
        &ledger,
    )
    .unwrap();
    let piped_ms = t.elapsed().as_secs_f64() * 1e3;
    let after = obs.metrics().snapshot();
    assert!(fit.model.converged);
    for (got, want) in fit.model.coefficients[1..].iter().zip(truth) {
        assert!(
            (got - want).abs() < 0.05,
            "pipelined GLM drifted: {got} vs {want}"
        );
    }
    r.row(vec![
        "glm while-loading".into(),
        format!("{piped_ms:.3}"),
        fit.report.rows.to_string(),
        delta(&before, &after, "ml.train.overlap_ns").to_string(),
        format!("converged={}", fit.model.converged),
    ]);

    // -- staged k-means.
    let init: Vec<f64> = vec![1.0, 1.0, 11.0, 11.0, -11.0, 9.0];
    let kopts = KmeansOptions {
        k: 3,
        max_iterations: 20,
        initial_centers: Some(init),
        ..KmeansOptions::default()
    };
    let pcols = ["f1", "f2"];
    let ledger = Ledger::new();
    let t = Instant::now();
    let (pts, rep) = vft
        .db2darray(
            &db,
            &dr,
            "trainfig_pts",
            &pcols,
            TransferPolicy::Locality,
            &ledger,
        )
        .unwrap();
    let staged_km = hpdkmeans(&pts, &kopts).unwrap();
    let staged_ms = t.elapsed().as_secs_f64() * 1e3;
    r.row(vec![
        "kmeans staged".into(),
        format!("{staged_ms:.3}"),
        rep.rows.to_string(),
        "0".into(),
        format!("k={}", staged_km.centers.len()),
    ]);

    // -- pipelined k-means: the first assignment pass overlaps the load.
    let ledger = Ledger::new();
    let before = obs.metrics().snapshot();
    let t = Instant::now();
    let kfit = kmeans_while_loading(
        &vft,
        &db,
        &dr,
        "trainfig_pts",
        &pcols,
        &kopts,
        TransferPolicy::Locality,
        &ledger,
    )
    .unwrap();
    let piped_ms = t.elapsed().as_secs_f64() * 1e3;
    let after = obs.metrics().snapshot();
    // Same warm start ⇒ both land on the blob centers.
    for (a, b) in kfit.model.centers.iter().zip(&staged_km.centers) {
        for (ai, bi) in a.iter().zip(b) {
            assert!((ai - bi).abs() < 1e-6, "pipelined k-means drifted");
        }
    }
    r.row(vec![
        "kmeans while-loading".into(),
        format!("{piped_ms:.3}"),
        kfit.report.rows.to_string(),
        delta(&before, &after, "ml.train.overlap_ns").to_string(),
        format!("k={}", kfit.model.centers.len()),
    ]);

    r.note(format!(
        "{ROWS} rows on {NODES} nodes, 2 R instances per node; both pipelines move the same bytes \
         and fit the same model — the while-loading rows additionally fold iteration-0 statistics \
         (GLM) / the first assignment pass (k-means) into the receive path"
    ));
    r.note(
        "ml.train.overlap_ns > 0 on the while-loading rows is the invariant CI checks: training \
         work really ran while partitions were still arriving, attributed to the same query id as \
         the vft.* transfer metrics",
    );
    r
}
