#![allow(clippy::needless_range_loop)] // validity-bitmap and center loops index by row/center id
//! # vdr-bench — regenerating the paper's evaluation
//!
//! One module per evaluation area; every figure of Section 7 has a function
//! returning a [`report::FigureReport`] with three kinds of columns:
//!
//! * **paper** — the value the paper reports (chart-read values are
//!   approximate and marked `~`),
//! * **model** — the paper-scale projection from the calibrated cost model
//!   (`vdr-cluster::profile` documents every constant's derivation),
//! * **measured** — a real, laptop-scale run of the actual implementation
//!   (correctness-checked), with its simulated and wall-clock times.
//!
//! The `figures` binary prints every report; `cargo bench` runs Criterion
//! benchmarks over the same real small-scale paths.

pub mod ablations;
pub mod compute_figs;
pub mod predict_figs;
pub mod report;
pub mod scan_figs;
pub mod train_figs;
pub mod transfer_figs;

pub use report::FigureReport;

/// A named figure generator.
pub type FigureFn = fn() -> FigureReport;

/// All figure generators in paper order.
pub fn all_figures() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("fig1", transfer_figs::figure1 as FigureFn),
        ("fig12", transfer_figs::figure12),
        ("fig13", transfer_figs::figure13),
        ("fig14", transfer_figs::figure14),
        ("fig15", predict_figs::figure15),
        ("fig16", predict_figs::figure16),
        ("fig17", compute_figs::figure17),
        ("fig18", compute_figs::figure18),
        ("fig19", compute_figs::figure19),
        ("fig20", compute_figs::figure20),
        ("fig21", transfer_figs::figure21),
        ("abl-policy", ablations::policy_skew),
        ("abl-encoding", ablations::wire_encoding),
        ("abl-pipelining", ablations::pipelining),
        ("abl-buffering", ablations::buffering),
        ("abl-replication", ablations::dfs_replication),
        ("scan", scan_figs::scan_path),
        ("train", train_figs::train_pipeline),
    ]
}
