//! Probe for the fig15 "scan-bound" caveat: times the bare scan query
//! (`SELECT a,b,c,d,e FROM t`, no predict) against the full KmeansPredict
//! query on the same table, printing best-of-N wall-clock for each. The
//! gap between the two is the prediction path's true overhead on top of
//! the scan.

use std::time::Instant;
use vdr_cluster::{NodeId, PhaseKind, PhaseRecorder, SimCluster};
use vdr_core::{register_prediction_functions, Model};
use vdr_ml::models::KmeansModel;
use vdr_verticadb::{Segmentation, VerticaDb};
use vdr_workloads::transfer_table;

fn best_ms(db: &VerticaDb, query: &str, iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let out = db.query(query).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.batch.num_rows(), 30_000);
        best = best.min(ms);
    }
    best
}

fn main() {
    let db = VerticaDb::new(SimCluster::for_tests(3));
    register_prediction_functions(&db);
    transfer_table(
        &db,
        "t",
        30_000,
        Segmentation::Hash {
            column: "id".into(),
        },
        4,
    )
    .unwrap();
    let model = Model::Kmeans(KmeansModel {
        centers: (0..10).map(|i| vec![i as f64 * 150.0 - 700.0; 5]).collect(),
        iterations: 1,
        total_withinss: 0.0,
    });
    let rec = PhaseRecorder::new("save", PhaseKind::Sequential, 3);
    db.models()
        .save(
            NodeId(0),
            "km",
            "dbadmin",
            "kmeans",
            "bench",
            model.to_bytes(),
            &rec,
        )
        .unwrap();

    let scan = "SELECT a, b, c, d, e FROM t";
    let predict = "SELECT KmeansPredict(a, b, c, d, e USING PARAMETERS model='km') \
                   OVER (PARTITION BEST) FROM t";
    // Warm both paths once (cache fill), then time.
    best_ms(&db, scan, 1);
    best_ms(&db, predict, 1);
    let scan_ms = best_ms(&db, scan, 20);
    let predict_ms = best_ms(&db, predict, 20);
    println!("scan_probe_ms   {scan_ms:.3}");
    println!("predict_ms      {predict_ms:.3}");
    println!("gap_ms          {:.3}", predict_ms - scan_ms);
}
