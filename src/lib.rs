//! # vertica-dr — Large-scale Predictive Analytics in Vertica, reproduced
//!
//! A from-scratch Rust reproduction of *"Large-scale Predictive Analytics in
//! Vertica: Fast Data Transfer, Distributed Model Creation, and In-database
//! Prediction"* (SIGMOD 2015): an MPP columnar database integrated with a
//! distributed R-like runtime through a fast parallel transfer path,
//! distributed machine learning, in-database model deployment/prediction,
//! and YARN-style resource management — all running against a simulated
//! cluster with a deterministic cost model calibrated to the paper's
//! testbed.
//!
//! The umbrella crate re-exports every subsystem; see each module's docs:
//!
//! * [`cluster`] — simulated nodes, disks, network, and the cost ledger.
//! * [`columnar`] — typed columns, encodings, and the block format.
//! * [`verticadb`] — the MPP database: SQL, segmentation, UDx framework, DFS.
//! * [`distr`] — the Distributed R runtime: darray/dframe/dlist.
//! * [`transfer`] — ODBC baselines and Vertica Fast Transfer.
//! * [`ml`] — hpdglm, hpdkmeans, hpdrf, cross-validation, serial baselines.
//! * [`sparksim`] — the Spark-on-HDFS comparator.
//! * [`yarn`] — capacity/fair scheduling and cgroup enforcement.
//! * [`core`] — sessions, model codec, prediction UDxs (the Figure 3 API).
//! * [`workloads`] — seeded synthetic data and table generators.
//! * [`obs`] — tracing spans, metrics, and `EXPLAIN ANALYZE`-style reports.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use vertica_dr::cluster::SimCluster;
//! use vertica_dr::core::{Model, Session, SessionOptions};
//! use vertica_dr::ml::{hpdglm, Family, GlmOptions};
//! use vertica_dr::verticadb::{Segmentation, VerticaDb};
//! use vertica_dr::workloads::regression_table;
//!
//! // A 4-node cluster running the database.
//! let db = VerticaDb::new(SimCluster::for_tests(4));
//! regression_table(&db, "sales", 2_000, 1.0, &[2.0, -0.5], 0.01,
//!                  Segmentation::Hash { column: "y".into() }, 7).unwrap();
//!
//! // Connect Distributed R co-located with the database.
//! let session = Session::connect_colocated(
//!     Arc::clone(&db),
//!     SessionOptions { r_instances_per_node: 4, ..Default::default() },
//! ).unwrap();
//!
//! // Fast transfer + distributed training + in-database deployment.
//! let (x, _) = session.db2darray("sales", &["x1", "x2"]).unwrap();
//! let (y, _) = session.db2darray("sales", &["y"]).unwrap();
//! let model = hpdglm(&x, &y, Family::Gaussian, &GlmOptions::default()).unwrap();
//! assert!((model.coefficients[1] - 2.0).abs() < 0.1);
//! session.deploy_model(&Model::Glm(model), "sales_model", "docs example").unwrap();
//!
//! // Score new rows inside the database.
//! let out = session.sql(
//!     "SELECT glmPredict(x1, x2 USING PARAMETERS model='sales_model') \
//!      OVER (PARTITION BEST) FROM sales",
//! ).unwrap();
//! assert_eq!(out.batch.num_rows(), 2_000);
//! ```

pub use vdr_cluster as cluster;
pub use vdr_columnar as columnar;
pub use vdr_core as core;
pub use vdr_distr as distr;
pub use vdr_ml as ml;
pub use vdr_obs as obs;
pub use vdr_sparksim as sparksim;
pub use vdr_transfer as transfer;
pub use vdr_verticadb as verticadb;
pub use vdr_workloads as workloads;
pub use vdr_yarn as yarn;
