//! Offline shim: the `parking_lot` API surface used by this workspace,
//! implemented over `std::sync`. Locks never poison (a panicking holder
//! passes the data through, matching parking_lot semantics).
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual exclusion primitive (non-poisoning `std::sync::Mutex`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// Guard for [`Mutex`]. The inner `Option` is always `Some` except
/// transiently inside [`Condvar::wait`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`Mutex`].
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock`).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        h.join().unwrap();
    }
}
