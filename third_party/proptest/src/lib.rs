//! Offline shim: the `proptest` API surface used by this workspace.
//!
//! Random-case property testing without shrinking: each `proptest!` test
//! runs `ProptestConfig::cases` deterministic seeded cases (seed = FNV of
//! test name + case index, so failures reproduce across runs). Strategies
//! generate values directly; `prop_map`, tuple composition, collection and
//! option strategies, `any::<T>()`, numeric ranges, and a small regex-subset
//! string strategy (`"[a-z]{0,12}"` style) cover every call site in-tree.
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

pub mod test_runner {
    use std::fmt;

    /// Runtime configuration: only `cases` is meaningful to the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the heavier end-to-end
            // property tests fast while still exercising variety.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property (produced by `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a, used to derive a per-test base seed from its name.
    pub fn seed_for(test_name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value`. No shrinking in the shim.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % width;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % width;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Regex-subset string strategy: literal characters, `[a-z]`-style
    /// classes (char ranges and literal members), and an optional `{m,n}` /
    /// `{n}` repetition after a class. Covers patterns like `"[a-z]{0,12}"`,
    /// `"[ -~]{0,120}"`, and `"[a-c]"`.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let class = parse_class(&chars[i + 1..close]);
                i = close + 1;
                let (min, max) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed repetition in {pattern:?}"));
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse::<usize>().expect("repetition lower bound"),
                            hi.trim().parse::<usize>().expect("repetition upper bound"),
                        ),
                        None => {
                            let n = spec.trim().parse::<usize>().expect("repetition count");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                let count = min + rng.below((max - min + 1) as u64) as usize;
                for _ in 0..count {
                    out.push(sample_class(&class, rng));
                }
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }

    /// Inclusive char ranges of a `[...]` class body.
    fn parse_class(body: &[char]) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                ranges.push((body[i], body[i + 2]));
                i += 3;
            } else {
                ranges.push((body[i], body[i]));
                i += 1;
            }
        }
        assert!(!ranges.is_empty(), "empty character class");
        ranges
    }

    fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges
            .iter()
            .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
            .sum();
        let mut idx = rng.below(total);
        for &(lo, hi) in ranges {
            let span = (hi as u64) - (lo as u64) + 1;
            if idx < span {
                return char::from_u32(lo as u32 + idx as u32).unwrap_or(lo);
            }
            idx -= span;
        }
        unreachable!("sample index within total span")
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix of special values, raw bit patterns (exotic magnitudes and
            // NaNs), and tame values — codecs must survive all three.
            match rng.below(8) {
                0 => {
                    const SPECIAL: [f64; 7] = [
                        0.0,
                        -0.0,
                        f64::NAN,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        f64::MIN,
                        f64::MAX,
                    ];
                    SPECIAL[rng.below(SPECIAL.len() as u64) as usize]
                }
                1 | 2 => f64::from_bits(rng.next_u64()),
                _ => (rng.unit_f64() - 0.5) * 2e6,
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, like the real `of`'s default weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` etc. resolve after a
    /// prelude glob import, as with the real crate.
    pub mod prop {
        pub use crate::{collection, option, strategy};
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let seed = $crate::test_runner::seed_for(stringify!($name), case);
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} (seed {seed:#x}) of {} failed: {e}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5..10usize, y in -3i64..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn vec_and_option_compose(
            v in prop::collection::vec(prop::option::of(any::<u8>()), 0..10)
        ) {
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn regex_subset_generates_matching_strings(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn prop_map_transforms(n in (0..5u8).prop_map(|v| v * 2)) {
            prop_assert!(n % 2 == 0 && n < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_accepted(b in any::<bool>()) {
            prop_assert!(b || !b);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::seed_for("t", 3);
        let b = crate::test_runner::seed_for("t", 3);
        assert_eq!(a, b);
        assert_ne!(a, crate::test_runner::seed_for("t", 4));
    }
}
