//! Offline shim: the `rand` API surface used by this workspace — a seeded
//! `StdRng` plus `Rng::gen_range` over integer and float ranges. The
//! generator is deterministic (SplitMix64), which the workloads rely on for
//! reproducible datasets.
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range from which a single value can be drawn.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                // Width fits in u128 for every supported integer type;
                // modulo bias is negligible for simulation workloads.
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Not the real StdRng
    /// algorithm, but a solid statistical generator with the same API.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
            let i = r.gen_range(0..=3usize);
            assert!(i <= 3);
        }
    }

    #[test]
    fn covers_the_full_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
