//! Offline shim: `#[derive(Serialize)]` targeting the in-tree `serde` shim's
//! simplified `Serialize` trait (`fn serialize(&self) -> Content`).
//!
//! Hand-parses the item's token stream (no `syn`/`quote` — the build
//! environment has no reachable crates registry). Supports non-generic
//! structs: named-field, tuple (newtype serializes transparently), and unit.
//! Enums and generics are rejected with a clear compile-time panic; extend
//! here if a future type needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;

    skip_attributes_and_visibility(&tokens, &mut idx);

    match ident_at(&tokens, idx).as_deref() {
        Some("struct") => idx += 1,
        Some("enum") => panic!(
            "in-tree serde_derive shim: #[derive(Serialize)] on enums is not implemented; \
             add enum support in third_party/serde_derive or impl Serialize by hand"
        ),
        other => panic!("in-tree serde_derive shim: expected `struct`, found {other:?}"),
    }

    let name = ident_at(&tokens, idx).expect("struct name");
    idx += 1;

    if matches!(&tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "in-tree serde_derive shim: generic structs are not supported \
             (deriving Serialize for `{name}`)"
        );
    }

    let body = match tokens.get(idx) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_fields(g.stream());
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", pairs.join(", "))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = tuple_field_count(g.stream());
            match n {
                0 => "::serde::Content::Null".to_string(),
                // Newtypes serialize transparently, like real serde.
                1 => "::serde::Serialize::serialize(&self.0)".to_string(),
                _ => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                }
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => "::serde::Content::Null".to_string(),
        other => panic!("in-tree serde_derive shim: unexpected token after struct name: {other:?}"),
    };

    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    output
        .parse()
        .expect("in-tree serde_derive shim: generated impl failed to re-parse")
}

fn ident_at(tokens: &[TokenTree], idx: usize) -> Option<String> {
    match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => Some(i.to_string()),
        _ => None,
    }
}

/// Advance past `#[...]` attributes (including doc comments) and `pub` /
/// `pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], idx: &mut usize) {
    loop {
        match tokens.get(*idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *idx += 2,
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *idx += 1;
                if matches!(
                    tokens.get(*idx),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *idx += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body, in declaration order.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut idx);
        let Some(name) = ident_at(&tokens, idx) else {
            break;
        };
        fields.push(name);
        idx += 1;
        // Skip `: Type` up to the next top-level comma. Parens/brackets are
        // already grouped by the tokenizer; only `<...>` needs depth
        // tracking (e.g. `HashMap<String, u64>` has an inner comma).
        let mut angle_depth = 0i32;
        while idx < tokens.len() {
            match &tokens[idx] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    idx += 1;
                    break;
                }
                _ => {}
            }
            idx += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn tuple_field_count(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    // Tolerate a trailing comma: `struct S(u8,)`.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}
