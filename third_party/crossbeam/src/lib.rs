//! Offline shim: the `crossbeam::channel` API surface used by this
//! workspace, implemented over `std::sync::mpsc`. Receivers are cloneable
//! (shared via a mutex), which is the one capability std channels lack.
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { tx },
            Receiver {
                rx: Arc::new(Mutex::new(rx)),
            },
        )
    }

    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.tx.send(value).map_err(|e| SendError(e.0))
        }
    }

    pub struct Receiver<T> {
        rx: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                rx: Arc::clone(&self.rx),
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv()
                .map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }
    }

    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(7).unwrap();
        assert_eq!(rx2.recv().unwrap(), 7);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
    }
}
