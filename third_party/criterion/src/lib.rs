//! Offline shim: the `criterion` API surface used by the figure benches.
//! Runs each benchmark closure `sample_size` times, reports min/mean wall
//! time to stdout, and skips criterion's statistics, HTML reports, and
//! warm-up machinery (warm-up settings are accepted and used only to bound
//! one untimed priming run).
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    results: Vec<(String, Duration, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; the shim does one untimed priming
    /// run instead of a timed warm-up window.
    pub fn warm_up_time(self, _t: Duration) -> Self {
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.as_ref();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let (min, mean) = bencher.summarize();
        println!("bench {name:<40} min {min:>12?}  mean {mean:>12?}");
        self.results.push((name.to_string(), min, mean));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&mut self) {
        println!("benchmarks complete: {} function(s)", self.results.len());
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // prime caches, untimed
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn summarize(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let min = *self.samples.iter().min().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        (min, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert!(runs >= 3, "priming + 3 samples, got {runs}");
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].0, "g/count");
        c.final_summary();
    }
}
