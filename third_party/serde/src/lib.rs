//! Offline shim: a simplified `serde`-compatible serialization facade.
//!
//! The real serde serializes through a visitor (`Serializer`) so formats
//! stream without intermediate allocation. This workspace only ever
//! serializes small reports and snapshots to JSON, so the shim collapses the
//! data model to one self-describing tree, [`Content`]: `T: Serialize`
//! renders itself into a `Content`, and downstream formats (the in-tree
//! `serde_json` shim) render `Content`. `#[derive(serde::Serialize)]` is
//! provided by the in-tree `serde_derive` proc-macro and targets this trait.
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

pub use serde_derive::Serialize;

use std::collections::{BTreeMap, HashMap};

/// The self-describing serialization tree every `Serialize` type renders to.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key-value pairs in insertion order (structs keep field order).
    Map(Vec<(String, Content)>),
}

/// A type that can render itself into the [`Content`] data model.
pub trait Serialize {
    fn serialize(&self) -> Content;
}

macro_rules! impl_int {
    ($variant:ident: $($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::$variant(*self as _)
            }
        }
    )*};
}

impl_int!(I64: i8, i16, i32, i64, isize);
impl_int!(U64: u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        // Deterministic output: sort keys.
        let mut pairs: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(pairs)
    }
}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Content::Seq(vec![$($name.serialize()),+])
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3u64.serialize(), Content::U64(3));
        assert_eq!((-3i32).serialize(), Content::I64(-3));
        assert_eq!("x".serialize(), Content::Str("x".into()));
        assert_eq!(None::<u8>.serialize(), Content::Null);
    }

    #[test]
    fn collections_render() {
        assert_eq!(
            vec![1u8, 2].serialize(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
        let t = ("k".to_string(), 1.5f64);
        assert_eq!(
            t.serialize(),
            Content::Seq(vec![Content::Str("k".into()), Content::F64(1.5)])
        );
    }
}
