//! Offline shim: a cheaply-cloneable immutable byte buffer with the subset
//! of the `bytes::Bytes` API this workspace uses.
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones share storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A view of `range` within this buffer, sharing storage.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    /// Render like `bytes` does: a quoted ASCII-escaped literal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_compare() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[1..], &[2, 3]);
    }

    #[test]
    fn slices_share_storage() {
        let a = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = a.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_slice(), &[3, 4]);
    }
}
