//! Offline shim: the `serde_json` API surface this workspace uses — a
//! [`Value`] tree, `to_value` / `to_string` / `to_string_pretty` over the
//! in-tree `serde` shim's `Serialize`, and a small recursive-descent parser
//! for round-tripping snapshots back in.
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

use serde::{Content, Serialize};
use std::fmt;

/// A parsed or built JSON document. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integer-valued number (JSON has one number type; the split keeps
    /// `u64` counters exact).
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl From<Content> for Value {
    fn from(c: Content) -> Self {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::I64(n) => Value::Int(n),
            Content::U64(n) => Value::UInt(n),
            Content::F64(f) => Value::Float(f),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => Value::Array(items.into_iter().map(Value::from).collect()),
            Content::Map(pairs) => {
                Value::Object(pairs.into_iter().map(|(k, v)| (k, Value::from(v))).collect())
            }
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Int(n) => Content::I64(*n),
            Value::UInt(n) => Content::U64(*n),
            Value::Float(f) => Content::F64(*f),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::serialize).collect()),
            Value::Object(o) => Content::Map(
                o.iter()
                    .map(|(k, v)| (k.clone(), v.serialize()))
                    .collect(),
            ),
        }
    }
}

/// Render `value` as a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(Value::from(value.serialize()))
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&Value::from(value.serialize()), &mut out, None, 0);
    Ok(out)
}

/// Two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&Value::from(value.serialize()), &mut out, Some(2), 0);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out, if f.alternate() { Some(2) } else { None }, 0);
        f.write_str(&out)
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            // JSON has no NaN/Infinity; match serde_json by emitting null.
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep whole floats readable but unambiguous: "3.0".
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1)
        }),
        Value::Object(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
            write_json_string(&pairs[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(&pairs[i].1, out, indent, depth + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"name":"vft","rows":100,"skew":1.5,"ok":true,"tags":["a","b"],"none":null}"#;
        let v = from_str(text).unwrap();
        assert_eq!(v.get("rows").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("skew").unwrap().as_f64(), Some(1.5));
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]\n"));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd".into());
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{bad}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }
}
