//! Offline shim: the `rayon` API surface used by this workspace.
//! `par_iter`/`into_par_iter` return ordinary sequential iterators, and
//! `ThreadPool::install` runs the closure inline on the calling thread while
//! making `current_num_threads()` report the pool's configured size. The
//! workspace uses rayon for *bounded* intra-node parallelism; sequential
//! execution preserves semantics (real cross-node concurrency comes from
//! `std::thread::scope` in the runtime layer, not from rayon).
//!
//! The build environment has no reachable crates registry, so third-party
//! dependencies are provided as in-tree shims via `[patch.crates-io]`.

use std::cell::Cell;
use std::fmt;

thread_local! {
    static CURRENT_POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Threads visible to the current context: the installed pool's size, or 1
/// outside any pool (this shim never runs closures on worker threads).
pub fn current_num_threads() -> usize {
    let n = CURRENT_POOL_THREADS.with(Cell::get);
    if n == 0 {
        1
    } else {
        n
    }
}

/// A "pool" that runs installed closures inline on the calling thread.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_POOL_THREADS.with(|c| c.replace(self.threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Thread naming is meaningless for an inline pool; accepted and ignored.
    pub fn thread_name<F: FnMut(usize) -> String>(self, _f: F) -> Self {
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

pub mod prelude {
    /// `into_par_iter()` — sequential stand-in: yields the ordinary
    /// `IntoIterator` iterator, so all adapter chains behave identically.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` — sequential stand-in for by-reference iteration.
    pub trait IntoParallelRefIterator<'a> {
        type Iter;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Iter = <&'a T as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` — sequential stand-in for by-mutable-reference
    /// iteration.
    pub trait IntoParallelRefMutIterator<'a> {
        type Iter;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type Iter = <&'a mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn install_scopes_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .thread_name(|t| format!("w{t}"))
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(super::current_num_threads(), 1);
        let inside = pool.install(super::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(super::current_num_threads(), 1);
    }

    #[test]
    fn par_iters_behave_like_iterators() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = (0..10).into_par_iter().sum();
        assert_eq!(sum, 45);
    }
}
